package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestBuildTagIncluded(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"unconstrained", "package x\n", true},
		{"custom tag excluded", "//go:build cardopc_pooldebug\n\npackage x\n", false},
		{"negated custom tag included", "//go:build !cardopc_pooldebug\n\npackage x\n", true},
		{"host goos", "//go:build " + runtime.GOOS + "\n\npackage x\n", true},
		{"foreign goos", "//go:build plan9\n\npackage x\n", runtime.GOOS == "plan9"},
		{"host goos and custom tag", "//go:build " + runtime.GOOS + " && cardopc_pooldebug\n\npackage x\n", false},
		{"host goos or custom tag", "//go:build " + runtime.GOOS + " || cardopc_pooldebug\n\npackage x\n", true},
		{"go version tag", "//go:build go1.21\n\npackage x\n", true},
		{"legacy plus build", "// +build cardopc_pooldebug\n\npackage x\n", false},
		{"doc comment then constraint", "// Package x does things.\n//go:build cardopc_pooldebug\n\npackage x\n", false},
		{"block comment header", "/*\nlicense text\n*/\n//go:build cardopc_pooldebug\n\npackage x\n", false},
		{"constraint after package clause ignored", "package x\n\n//go:build cardopc_pooldebug\n", true},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.name, " ", "_"), func(t *testing.T) {
			if got := buildTagIncluded([]byte(tc.src)); got != tc.want {
				t.Errorf("buildTagIncluded(%q) = %v, want %v", tc.src, got, tc.want)
			}
		})
	}
}

// writeBuildVariantPair adds a tag-gated file pair to the fixture
// module's package a. Both files declare debugMode — loading both would
// be a redeclaration type error — and the gated-on file carries a
// floatcmp violation that must stay invisible to the default build.
func writeBuildVariantPair(t testing.TB, dir string) (onPath string) {
	t.Helper()
	onPath = filepath.Join(dir, "a", "dbg_on.go")
	on := `//go:build cardopc_pooldebug

package a

const debugMode = true

func debugEq(x, y float64) bool { return x == y }
`
	off := `//go:build !cardopc_pooldebug

package a

const debugMode = false
`
	if err := os.WriteFile(onPath, []byte(on), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a", "dbg_off.go"), []byte(off), 0o644); err != nil {
		t.Fatal(err)
	}
	return onPath
}

// TestLoadModuleSkipsTagExcludedFiles pins the loader side of the
// contract: a //go:build-gated variant pair type-checks cleanly (no
// redeclaration) because only the default-build file is loaded, and no
// analyzer ever reports into the excluded file.
func TestLoadModuleSkipsTagExcludedFiles(t *testing.T) {
	dir := t.TempDir()
	writeFixtureModule(t, dir)
	writeBuildVariantPair(t, dir)

	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	var aPkg *Package
	for _, p := range mod.Pkgs {
		if p.Path == "fixturemod/a" {
			aPkg = p
		}
	}
	if aPkg == nil {
		t.Fatal("package fixturemod/a not loaded")
	}
	if len(aPkg.TypeErrors) != 0 {
		t.Fatalf("type errors loading variant pair: %v", aPkg.TypeErrors)
	}
	var names []string
	for _, f := range aPkg.Files {
		names = append(names, filepath.Base(mod.Fset.Position(f.Package).Filename))
	}
	if len(names) != 2 {
		t.Fatalf("loaded files %v, want a.go and dbg_off.go only", names)
	}
	for _, n := range names {
		if n == "dbg_on.go" {
			t.Fatalf("tag-excluded dbg_on.go was loaded: %v", names)
		}
	}
	for _, d := range Run(mod, All()) {
		if filepath.Base(d.Pos.Filename) == "dbg_on.go" {
			t.Errorf("diagnostic in tag-excluded file: %v", d)
		}
	}
}

// TestIncrementalIgnoresTagExcludedFiles pins the cache side: the
// scanner skips the same files the loader skips, so an excluded file
// neither contributes to cache keys nor busts warm entries when edited.
func TestIncrementalIgnoresTagExcludedFiles(t *testing.T) {
	dir := t.TempDir()
	writeFixtureModule(t, dir)
	onPath := writeBuildVariantPair(t, dir)
	cacheDir := filepath.Join(dir, ".cardopc-vet-cache")

	runIncr(t, dir, cacheDir, All())
	warm, _ := runIncr(t, dir, cacheDir, All())
	if warm.Hits != 2 || warm.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 2/0", warm.Hits, warm.Misses)
	}
	for _, d := range warm.Diags {
		if filepath.Base(d.Pos.Filename) == "dbg_on.go" {
			t.Errorf("diagnostic in tag-excluded file: %v", d)
		}
	}

	// Editing the excluded file must not invalidate anything: it is
	// invisible to the default build and to the key computation.
	data, err := os.ReadFile(onPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(onPath, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	res, _ := runIncr(t, dir, cacheDir, All())
	if res.Hits != 2 || res.Misses != 0 {
		t.Fatalf("after editing excluded file: hits=%d misses=%d, want 2/0", res.Hits, res.Misses)
	}
}
