package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck enforces the pooled-buffer lifetime discipline the PR 5 hot
// path depends on. Values acquired from the fft pools — GetGrid,
// GetWorkspace, NewForwardCache — are manually managed: every acquire
// must reach a matching PutGrid/Release on every exit path, must not be
// released twice, must not be used after release, and must not leak out
// of the acquiring function unnoticed.
//
// The analyzer runs the shared CFG + forward-dataflow layer (cfg.go)
// per function, tracking each acquired local through branches with a
// small may-bitset (live/released/escaped/deferred). Matching is
// name-based — any call to a function or method named GetGrid,
// GetWorkspace or NewForwardCache acquires; PutGrid(x) or a zero-arg
// x.Release() releases — so fixtures and future pools are covered
// without hard-coding package paths.
//
// Ownership-transfer conventions the analyzer blesses silently:
//   - `slice[i] = x` hands the value to the slice owner (the litho
//     worker pattern: wss[w] = ws inside a goroutine, drained and
//     released by the launcher after wg.Wait).
//   - `defer PutGrid(x)` / `defer x.Release()` (directly or inside a
//     deferred closure) satisfies the release obligation on every path.
//
// Everything else that moves a pooled value out of the function —
// return, struct-field store, goroutine capture, storing the acquire
// result anywhere but a fresh local — is reported; intentional
// hand-offs carry a //cardopc:allow poolcheck with the contract.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "track pooled fft buffers through branches; flag leaks, double releases, use-after-release and escapes",
	Run:  runPoolCheck,
}

// poolAcquireNames are the pool entry points whose results carry a
// release obligation.
var poolAcquireNames = map[string]bool{
	"GetGrid":         true,
	"GetWorkspace":    true,
	"NewForwardCache": true,
}

const (
	poolLive     uint8 = 1 << iota // acquired, not yet released on some path
	poolReleased                   // released on some path
	poolEscaped                    // ownership handed off (return/store/goroutine)
	poolDeferred                   // release deferred; fires on every exit
)

// poolFact is the per-variable dataflow fact: the may-bits plus the
// acquire site, so leak diagnostics land on the acquire.
type poolFact struct {
	bits uint8
	pos  token.Pos
}

type poolState map[types.Object]poolFact

func runPoolCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body // analyzed as its own function
			default:
				return true
			}
			if body != nil {
				pc := &poolChecker{pass: pass, body: body, seen: map[string]bool{}}
				pc.run()
			}
			return true
		})
	}
}

type poolChecker struct {
	pass *Pass
	body *ast.BlockStmt
	// seen dedupes diagnostics: leak reports land on the acquire
	// position, which several exit paths can reach.
	seen   map[string]bool
	report bool
}

func (pc *poolChecker) run() {
	// Cheap pre-scan: skip the CFG machinery for the vast majority of
	// functions that never touch a pool.
	touches := false
	ast.Inspect(pc.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := calleeName(call); ok && poolAcquireNames[name] {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	cfg := BuildCFG(pc.body)
	in := ForwardDataflow(cfg,
		func() poolState { return poolState{} },
		func(s poolState) poolState {
			c := make(poolState, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		func(b *Block, s poolState) poolState {
			pc.report = false
			pc.block(b, s)
			return s
		},
		func(into, from poolState) bool {
			changed := false
			for k, f := range from {
				g, ok := into[k]
				nb := g.bits | f.bits
				if !ok || nb != g.bits {
					pos := g.pos
					if pos == token.NoPos {
						pos = f.pos
					}
					into[k] = poolFact{bits: nb, pos: pos}
					changed = true
				}
			}
			return changed
		},
	)

	// Report pass: walk each reachable block once with its fixpoint
	// in-state, now emitting diagnostics.
	pc.report = true
	for _, b := range cfg.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		s := make(poolState, len(st))
		for k, v := range st {
			s[k] = v
		}
		pc.block(b, s)
		// A block that falls off the end of the function (edges to Exit
		// without a return) is an implicit return: same leak check.
		if fallsToExit(b, cfg.Exit) {
			pc.leakCheck(s)
		}
	}
}

// fallsToExit reports whether b reaches Exit by running off the end of
// the body rather than via an explicit return.
func fallsToExit(b *Block, exit *Block) bool {
	toExit := false
	for _, s := range b.Succs {
		if s == exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	if n := len(b.Nodes); n > 0 {
		if _, isRet := b.Nodes[n-1].(*ast.ReturnStmt); isRet {
			return false
		}
	}
	return true
}

func (pc *poolChecker) block(b *Block, st poolState) {
	for _, n := range b.Nodes {
		pc.node(n, st)
	}
}

func (pc *poolChecker) reportf(pos token.Pos, format string, args ...any) {
	if !pc.report {
		return
	}
	key := pc.pass.Fset.Position(pos).String() + format
	if pc.seen[key] {
		return
	}
	pc.seen[key] = true
	pc.pass.Reportf(pos, format, args...)
}

func (pc *poolChecker) node(n ast.Node, st poolState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		pc.assign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					pc.assignOne(vs.Names[i], vs.Values[i], st)
				}
			}
		}
	case *ast.ExprStmt:
		pc.expr(n.X, st, true)
	case *ast.DeferStmt:
		pc.deferStmt(n, st)
	case *ast.GoStmt:
		pc.goStmt(n, st)
	case *ast.ReturnStmt:
		pc.returnStmt(n, st)
	case ast.Expr:
		pc.expr(n, st, false)
	default:
		pc.uses(n, st)
	}
}

// assign handles one assignment statement: acquires bind obligations,
// stores may transfer or escape ownership, everything else is a use.
func (pc *poolChecker) assign(as *ast.AssignStmt, st poolState) {
	if len(as.Lhs) != len(as.Rhs) {
		for _, r := range as.Rhs {
			pc.expr(r, st, false)
		}
		for _, l := range as.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				pc.uses(l, st)
			}
		}
		return
	}
	for i := range as.Rhs {
		pc.assignOne(as.Lhs[i], as.Rhs[i], st)
	}
}

func (pc *poolChecker) assignOne(lhs, rhs ast.Expr, st poolState) {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok && isPoolAcquire(call) {
		name, _ := calleeName(call)
		for _, a := range call.Args {
			pc.expr(a, st, false)
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				pc.reportf(call.Pos(), "result of %s discarded; the pooled value can never be released", name)
				return
			}
			obj := pc.pass.ObjectOf(l)
			if obj == nil {
				return
			}
			if f, ok := st[obj]; ok && f.bits&poolLive != 0 {
				pc.reportf(call.Pos(), "%s overwrites %s while it still holds a live pooled value; release it first", name, l.Name)
			}
			st[obj] = poolFact{bits: poolLive, pos: call.Pos()}
		default:
			pc.reportf(call.Pos(), "result of %s stored directly into a non-local; bind it to a local so its release can be tracked", name)
			pc.uses(lhs, st)
		}
		return
	}
	if lit, ok := rhs.(*ast.FuncLit); ok {
		pc.closureEscape(lit, st, "captured by a closure stored in a variable")
		return
	}
	// A tracked local moved into a container or field.
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if obj := pc.pass.ObjectOf(id); obj != nil {
			if f, ok := st[obj]; ok {
				pc.checkUse(id, f)
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					pc.reportf(rhs.Pos(), "pooled value %s escapes into field %s; the release obligation is no longer local", id.Name, l.Sel.Name)
					f.bits |= poolEscaped
					st[obj] = f
					pc.uses(l.X, st)
					return
				case *ast.IndexExpr:
					// Blessed hand-off: the slice owner drains and
					// releases (litho worker pattern).
					f.bits |= poolEscaped
					st[obj] = f
					pc.uses(l.X, st)
					pc.uses(l.Index, st)
					return
				}
			}
		}
	}
	pc.expr(rhs, st, false)
	if _, ok := lhs.(*ast.Ident); !ok {
		pc.uses(lhs, st)
	}
}

// expr folds an expression into the state: releases flip bits, calls
// borrow their arguments, a bare acquire is a leak on the spot.
func (pc *poolChecker) expr(e ast.Expr, st poolState, stmtCtx bool) {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		pc.uses(e, st)
		return
	}
	if isPoolAcquire(call) {
		name, _ := calleeName(call)
		if stmtCtx {
			pc.reportf(call.Pos(), "result of %s discarded; the pooled value can never be released", name)
		}
		// In a larger expression the result escapes into the parent;
		// uses below still check the arguments.
		for _, a := range call.Args {
			pc.expr(a, st, false)
		}
		return
	}
	if obj := pc.releaseTarget(call); obj != nil {
		// Only releases of values this function acquired are in scope;
		// draining a slice of handed-off workspaces (the range-var
		// ws.Release() pattern) is the owner's business.
		if f, tracked := st[obj]; tracked {
			if f.bits&poolReleased != 0 && f.bits&poolLive == 0 {
				pc.reportf(call.Pos(), "pooled value %s released twice", releaseArgName(call))
			}
			f.bits = (f.bits &^ poolLive) | poolReleased
			st[obj] = f
		}
		return
	}
	// Ordinary call: arguments are borrows. Synchronous closures
	// (parallelRows, sort.Slice) may use tracked values but do not take
	// ownership; releases stay with the caller.
	pc.uses(call.Fun, st)
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			pc.borrowUses(lit, st)
			continue
		}
		pc.expr(a, st, false)
	}
}

// releaseTarget resolves PutGrid(x) / x.Release() to the tracked object
// being released, or nil.
func (pc *poolChecker) releaseTarget(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "PutGrid" && len(call.Args) == 1 {
			return pc.trackedIdent(call.Args[0])
		}
		if fun.Sel.Name == "Release" && len(call.Args) == 0 {
			return pc.trackedIdent(fun.X)
		}
	case *ast.Ident:
		if fun.Name == "PutGrid" && len(call.Args) == 1 {
			return pc.trackedIdent(call.Args[0])
		}
	}
	return nil
}

// releaseArgName names the released value for diagnostics.
func releaseArgName(call *ast.CallExpr) string {
	var e ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Release" {
			e = fun.X
		} else if len(call.Args) == 1 {
			e = call.Args[0]
		}
	case *ast.Ident:
		if len(call.Args) == 1 {
			e = call.Args[0]
		}
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}

// trackedIdent resolves e to an identifier's object when e is a plain
// local name; release through anything else is out of scope.
func (pc *poolChecker) trackedIdent(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pc.pass.ObjectOf(id)
}

// deferStmt credits deferred releases: they run on every exit path, so
// the obligation is satisfied while the value stays usable.
func (pc *poolChecker) deferStmt(d *ast.DeferStmt, st poolState) {
	if obj := pc.releaseTarget(d.Call); obj != nil {
		if f, tracked := st[obj]; tracked {
			f.bits |= poolDeferred
			st[obj] = f
		}
		return
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... PutGrid(x) ... }(): scan for releases of
		// tracked outer locals; other uses inside are borrows.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := pc.releaseTarget(call); obj != nil {
				if _, tracked := st[obj]; tracked {
					f := st[obj]
					f.bits |= poolDeferred
					st[obj] = f
				}
			}
			return true
		})
		return
	}
	pc.uses(d.Call, st)
}

// goStmt flags tracked values crossing into a goroutine: the pool
// discipline is single-owner, and a concurrent borrower outliving the
// release is exactly the bug class poolcheck exists for.
func (pc *poolChecker) goStmt(g *ast.GoStmt, st poolState) {
	reported := map[types.Object]bool{}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pc.pass.ObjectOf(id)
		if obj == nil || reported[obj] {
			return true
		}
		if f, ok := st[obj]; ok {
			reported[obj] = true
			pc.reportf(id.Pos(), "pooled value %s captured by goroutine; its lifetime is no longer bounded by this function", id.Name)
			f.bits |= poolEscaped
			st[obj] = f
		}
		return true
	})
}

func (pc *poolChecker) returnStmt(r *ast.ReturnStmt, st poolState) {
	for _, res := range r.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pc.pass.ObjectOf(id); obj != nil {
				if f, ok := st[obj]; ok {
					if f.bits&poolLive != 0 {
						pc.reportf(id.Pos(), "pooled value %s returned; ownership moves to the caller", id.Name)
						f.bits |= poolEscaped
						st[obj] = f
					} else {
						pc.checkUse(id, f)
					}
				}
			}
			return true
		})
	}
	pc.leakCheck(st)
}

// leakCheck fires at an exit path for every value still carrying an
// unsatisfied release obligation. The diagnostic lands on the acquire.
func (pc *poolChecker) leakCheck(st poolState) {
	for obj, f := range st {
		if f.bits&poolLive != 0 && f.bits&(poolDeferred|poolEscaped) == 0 {
			pc.reportf(f.pos, "pooled value %s acquired here is not released on every exit path", obj.Name())
		}
	}
}

// uses walks an arbitrary subtree checking tracked identifiers for
// use-after-release; function literals encountered here capture their
// environment and so count as escapes.
func (pc *poolChecker) uses(n ast.Node, st poolState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			pc.closureEscape(m, st, "captured by a closure that outlives this statement")
			return false
		case *ast.Ident:
			if obj := pc.pass.ObjectOf(m); obj != nil {
				if f, ok := st[obj]; ok {
					pc.checkUse(m, f)
				}
			}
		}
		return true
	})
}

// borrowUses checks uses inside a closure passed synchronously to a
// call: values are borrowed, not captured, so only use-after-release
// applies.
func (pc *poolChecker) borrowUses(lit *ast.FuncLit, st poolState) {
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pc.pass.ObjectOf(id); obj != nil {
				if f, ok := st[obj]; ok {
					pc.checkUse(id, f)
				}
			}
		}
		return true
	})
}

// closureEscape reports tracked values captured by a closure whose
// lifetime the analyzer cannot bound (assigned, returned, stored).
func (pc *poolChecker) closureEscape(lit *ast.FuncLit, st poolState, how string) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pc.pass.ObjectOf(id)
		if obj == nil || reported[obj] {
			return true
		}
		if f, ok := st[obj]; ok {
			reported[obj] = true
			pc.reportf(id.Pos(), "pooled value %s %s; its release can no longer be verified", id.Name, how)
			f.bits |= poolEscaped
			st[obj] = f
		}
		return true
	})
}

func (pc *poolChecker) checkUse(id *ast.Ident, f poolFact) {
	if f.bits&poolReleased != 0 && f.bits&poolLive == 0 {
		pc.reportf(id.Pos(), "pooled value %s used after release", id.Name)
	}
}

// isPoolAcquire reports whether call is one of the pool entry points.
func isPoolAcquire(call *ast.CallExpr) bool {
	name, ok := calleeName(call)
	return ok && poolAcquireNames[name]
}
