package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck enforces the pooled-buffer lifetime discipline the PR 5 hot
// path depends on. Values acquired from the fft pools — GetGrid,
// GetWorkspace, GetHalf, NewForwardCache — are manually managed: every acquire
// must reach a matching PutGrid/Release on every exit path, must not be
// released twice, must not be used after release, and must not leak out
// of the acquiring function unnoticed.
//
// The analyzer runs the shared CFG + forward-dataflow layer (cfg.go)
// per function, tracking each acquired local through branches with a
// small may-bitset (live/released/escaped/deferred). Matching is
// name-based — any call to a function or method named GetGrid,
// GetWorkspace, GetHalf or NewForwardCache acquires; PutGrid(x) or a
// zero-arg x.Release() releases — so fixtures and future pools are
// covered without hard-coding package paths.
//
// Since the interprocedural layer (callgraph.go, summary.go) the
// analyzer also sees through calls: a function returning a live pooled
// value becomes pool-returning (summary PooledResults) and its callers
// inherit the release obligation at the call site; passing a tracked
// value to a callee whose summary releases that parameter position
// counts as the release; passing it to one that retains it is an
// escape.
//
// Ownership-transfer conventions the analyzer blesses silently:
//   - `slice[i] = x` hands the value to the slice owner (the litho
//     worker pattern: wss[w] = ws inside a goroutine, drained and
//     released by the launcher after wg.Wait).
//   - `defer PutGrid(x)` / `defer x.Release()` (directly or inside a
//     deferred closure) satisfies the release obligation on every path.
//   - `return x` while x is live: the function becomes pool-returning
//     and every caller is checked instead.
//   - a store into a field/element reachable from a value whose type
//     has a receiver-releasing method (summary ReleasesRecvHeld — the
//     ForwardCache shape): the owner's Release discharges it.
//   - a goroutine capture fenced by a later sync.WaitGroup.Wait on
//     every path: the borrow provably ends inside the function.
//
// Everything else that moves a pooled value out of the function —
// composite-value return, struct-field store into a non-owner,
// unfenced goroutine capture, storing the acquire result anywhere but
// a fresh local — is reported; the rare intentional hand-off outside
// these contracts carries a //cardopc:allow poolcheck.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "track pooled fft buffers through branches; flag leaks, double releases, use-after-release and escapes",
	Run:  runPoolCheck,
}

// poolAcquireNames are the pool entry points whose results carry a
// release obligation.
var poolAcquireNames = map[string]bool{
	"GetGrid":         true,
	"GetWorkspace":    true,
	"GetHalf":         true,
	"NewForwardCache": true,
}

const (
	poolLive     uint8 = 1 << iota // acquired, not yet released on some path
	poolReleased                   // released on some path
	poolEscaped                    // ownership handed off (return/store/goroutine)
	poolDeferred                   // release deferred; fires on every exit
	poolFenced                     // borrowed by a goroutine; pending a WaitGroup.Wait fence
)

// poolFact is the per-variable dataflow fact: the may-bits plus the
// acquire site, so leak diagnostics land on the acquire, and the
// goroutine-capture site for unfenced-borrow diagnostics.
type poolFact struct {
	bits uint8
	pos  token.Pos
	cpos token.Pos
}

type poolState map[types.Object]poolFact

func runPoolCheck(pass *Pass) {
	var ip *Interproc
	if pass.Mod != nil {
		ip = pass.Mod.Interproc()
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body // analyzed as its own function
			default:
				return true
			}
			if body != nil {
				pc := &poolChecker{pass: pass, ip: ip, body: body, seen: map[string]bool{}}
				pc.run()
			}
			return true
		})
	}
}

type poolChecker struct {
	pass *Pass
	ip   *Interproc
	body *ast.BlockStmt
	// seen dedupes diagnostics: leak reports land on the acquire
	// position, which several exit paths can reach.
	seen   map[string]bool
	report bool
	// fenceDeferred records a `defer wg.Wait()` (directly or inside a
	// deferred closure): the barrier runs on every exit, so goroutine
	// borrows are fenced even though no inline Wait appears.
	fenceDeferred bool
}

// pooledIndices returns the result indices of call carrying a release
// obligation: intrinsic acquires by name, plus pool-returning module
// callees by summary.
func (pc *poolChecker) pooledIndices(call *ast.CallExpr) []int {
	if pc.ip != nil {
		return pc.ip.PooledIndices(pc.pass.Pkg, call)
	}
	if isPoolAcquire(call) {
		return []int{0}
	}
	return nil
}

func (pc *poolChecker) run() {
	// Cheap pre-scan: skip the CFG machinery for the vast majority of
	// functions that never touch a pool.
	touches := false
	ast.Inspect(pc.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if len(pc.pooledIndices(call)) > 0 {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	cfg := BuildCFG(pc.body)
	in := ForwardDataflow(cfg,
		func() poolState { return poolState{} },
		func(s poolState) poolState {
			c := make(poolState, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		func(b *Block, s poolState) poolState {
			pc.report = false
			pc.block(b, s)
			return s
		},
		func(into, from poolState) bool {
			changed := false
			for k, f := range from {
				g, ok := into[k]
				nb := g.bits | f.bits
				if !ok || nb != g.bits {
					pos := g.pos
					if pos == token.NoPos {
						pos = f.pos
					}
					cpos := g.cpos
					if cpos == token.NoPos {
						cpos = f.cpos
					}
					into[k] = poolFact{bits: nb, pos: pos, cpos: cpos}
					changed = true
				}
			}
			return changed
		},
	)

	// Report pass: walk each reachable block once with its fixpoint
	// in-state, now emitting diagnostics.
	pc.report = true
	for _, b := range cfg.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		s := make(poolState, len(st))
		for k, v := range st {
			s[k] = v
		}
		pc.block(b, s)
		// A block that falls off the end of the function (edges to Exit
		// without a return) is an implicit return: same leak check.
		if fallsToExit(b, cfg.Exit) {
			pc.leakCheck(s)
		}
	}
}

// fallsToExit reports whether b reaches Exit by running off the end of
// the body rather than via an explicit return.
func fallsToExit(b *Block, exit *Block) bool {
	toExit := false
	for _, s := range b.Succs {
		if s == exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	if n := len(b.Nodes); n > 0 {
		if _, isRet := b.Nodes[n-1].(*ast.ReturnStmt); isRet {
			return false
		}
	}
	return true
}

func (pc *poolChecker) block(b *Block, st poolState) {
	for _, n := range b.Nodes {
		pc.node(n, st)
	}
}

func (pc *poolChecker) reportf(pos token.Pos, format string, args ...any) {
	if !pc.report {
		return
	}
	key := pc.pass.Fset.Position(pos).String() + format
	if pc.seen[key] {
		return
	}
	pc.seen[key] = true
	pc.pass.Reportf(pos, format, args...)
}

func (pc *poolChecker) node(n ast.Node, st poolState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		pc.assign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					pc.assignOne(vs.Names[i], vs.Values[i], st)
				}
			}
		}
	case *ast.ExprStmt:
		pc.expr(n.X, st, true)
	case *ast.DeferStmt:
		pc.deferStmt(n, st)
	case *ast.GoStmt:
		pc.goStmt(n, st)
	case *ast.ReturnStmt:
		pc.returnStmt(n, st)
	case ast.Expr:
		pc.expr(n, st, false)
	default:
		pc.uses(n, st)
	}
}

// assign handles one assignment statement: acquires bind obligations,
// stores may transfer or escape ownership, everything else is a use.
func (pc *poolChecker) assign(as *ast.AssignStmt, st poolState) {
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value bind from one call: g, err := f(). Pooled result
		// indices (per the callee summary) bind obligations to their
		// left-hand identifiers exactly like a direct acquire.
		if len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				if idx := pc.pooledIndices(call); len(idx) > 0 {
					name, _ := calleeName(call)
					for _, a := range call.Args {
						pc.expr(a, st, false)
					}
					pooledAt := map[int]bool{}
					for _, i := range idx {
						pooledAt[i] = true
					}
					for i, l := range as.Lhs {
						if !pooledAt[i] {
							continue
						}
						pc.bindAcquire(l, call, name, st)
					}
					return
				}
			}
		}
		for _, r := range as.Rhs {
			pc.expr(r, st, false)
		}
		for _, l := range as.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				pc.uses(l, st)
			}
		}
		return
	}
	for i := range as.Rhs {
		pc.assignOne(as.Lhs[i], as.Rhs[i], st)
	}
}

// bindAcquire binds one pooled result of call to lhs: a fresh local
// starts tracking, a blank or non-local destination is reported.
func (pc *poolChecker) bindAcquire(lhs ast.Expr, call *ast.CallExpr, name string, st poolState) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			pc.reportf(call.Pos(), "result of %s discarded; the pooled value can never be released", name)
			return
		}
		obj := pc.pass.ObjectOf(l)
		if obj == nil {
			return
		}
		if f, ok := st[obj]; ok && f.bits&poolLive != 0 {
			pc.reportf(call.Pos(), "%s overwrites %s while it still holds a live pooled value; release it first", name, l.Name)
		}
		st[obj] = poolFact{bits: poolLive, pos: call.Pos()}
	default:
		if pc.ownedStore(lhs) {
			// The destination's type has a receiver-releasing method
			// (ForwardCache.Release); the owner discharges the obligation.
			pc.uses(lhs, st)
			return
		}
		pc.reportf(call.Pos(), "result of %s stored directly into a non-local; bind it to a local so its release can be tracked", name)
		pc.uses(lhs, st)
	}
}

// ownedStore reports whether lhs stores into a field/element reachable
// from a value whose type releases its held pooled values (summary
// ReleasesRecvHeld) — a legitimate ownership transfer to that owner.
func (pc *poolChecker) ownedStore(lhs ast.Expr) bool {
	if pc.ip == nil {
		return false
	}
	root := exprRootObj(pc.pass.Pkg.Info, lhs)
	if root == nil {
		return false
	}
	return pc.ip.TypeReleasesHeld(root.Type())
}

func (pc *poolChecker) assignOne(lhs, rhs ast.Expr, st poolState) {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok && len(pc.pooledIndices(call)) > 0 {
		name, _ := calleeName(call)
		for _, a := range call.Args {
			pc.expr(a, st, false)
		}
		pc.bindAcquire(lhs, call, name, st)
		return
	}
	if lit, ok := rhs.(*ast.FuncLit); ok {
		pc.closureEscape(lit, st, "captured by a closure stored in a variable")
		return
	}
	// A tracked local moved into a container or field.
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if obj := pc.pass.ObjectOf(id); obj != nil {
			if f, ok := st[obj]; ok {
				pc.checkUse(id, f)
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if !pc.ownedStore(l) {
						pc.reportf(rhs.Pos(), "pooled value %s escapes into field %s; the release obligation is no longer local", id.Name, l.Sel.Name)
					}
					f.bits |= poolEscaped
					st[obj] = f
					pc.uses(l.X, st)
					return
				case *ast.IndexExpr:
					// Blessed hand-off: the slice owner drains and
					// releases (litho worker pattern). Ownership moves
					// wholesale, so the local drops its live obligation
					// — a loop may re-acquire into the same local on the
					// next iteration.
					f.bits = (f.bits &^ poolLive) | poolEscaped
					st[obj] = f
					pc.uses(l.X, st)
					pc.uses(l.Index, st)
					return
				}
			}
		}
	}
	pc.expr(rhs, st, false)
	if _, ok := lhs.(*ast.Ident); !ok {
		pc.uses(lhs, st)
	}
}

// expr folds an expression into the state: releases flip bits, calls
// borrow their arguments, a bare acquire is a leak on the spot.
func (pc *poolChecker) expr(e ast.Expr, st poolState, stmtCtx bool) {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		pc.uses(e, st)
		return
	}
	if len(pc.pooledIndices(call)) > 0 {
		name, _ := calleeName(call)
		if stmtCtx {
			pc.reportf(call.Pos(), "result of %s discarded; the pooled value can never be released", name)
		}
		// In a larger expression the result escapes into the parent;
		// uses below still check the arguments.
		for _, a := range call.Args {
			pc.expr(a, st, false)
		}
		return
	}
	if obj := pc.releaseTarget(call); obj != nil {
		// Only releases of values this function acquired are in scope;
		// draining a slice of handed-off workspaces (the range-var
		// ws.Release() pattern) is the owner's business.
		if f, tracked := st[obj]; tracked {
			if f.bits&poolReleased != 0 && f.bits&poolLive == 0 {
				pc.reportf(call.Pos(), "pooled value %s released twice", releaseArgName(call))
			}
			if f.bits&poolFenced != 0 {
				pc.reportf(call.Pos(), "pooled value %s released while a goroutine may still use it; fence with WaitGroup.Wait first", releaseArgName(call))
			}
			f.bits = (f.bits &^ poolLive) | poolReleased
			st[obj] = f
		}
		return
	}
	if isWaitGroupWait(pc.pass.Pkg.Info, call) {
		// The barrier every fenced goroutine borrow was waiting for: the
		// spawned workers have finished, borrows are over.
		clearFences(st)
		return
	}
	// Ordinary call: arguments are borrows unless the callee's summary
	// says otherwise. Synchronous closures (parallelRows, sort.Slice)
	// may use tracked values but do not take ownership; releases stay
	// with the caller.
	pc.uses(call.Fun, st)
	for ai, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			pc.borrowUses(lit, st)
			continue
		}
		if pc.summaryArg(call, ai, a, st) {
			continue // the callee consumed the value; not an ordinary use
		}
		pc.expr(a, st, false)
	}
}

// summaryArg folds the resolved callees' summaries over one tracked
// argument: a callee that releases the parameter position discharges
// the obligation; one that retains it is an escape. It reports whether
// the callee consumed the value, so the caller skips the ordinary
// use-after-release check for that argument.
func (pc *poolChecker) summaryArg(call *ast.CallExpr, ai int, a ast.Expr, st poolState) bool {
	if pc.ip == nil {
		return false
	}
	id, ok := ast.Unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pc.pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	f, tracked := st[obj]
	if !tracked {
		return false
	}
	consumed := false
	for _, fn := range pc.ip.Graph.ResolveCallees(pc.pass.Pkg, call) {
		s := pc.ip.SummaryOf(fn)
		if s == nil {
			continue
		}
		for _, rp := range s.ReleasesParams {
			if rp != ai {
				continue
			}
			if f.bits&poolReleased != 0 && f.bits&poolLive == 0 {
				pc.reportf(call.Pos(), "pooled value %s released twice", id.Name)
			}
			if f.bits&poolFenced != 0 {
				pc.reportf(call.Pos(), "pooled value %s released while a goroutine may still use it; fence with WaitGroup.Wait first", id.Name)
			}
			f.bits = (f.bits &^ poolLive) | poolReleased
			st[obj] = f
			consumed = true
		}
		for _, ep := range s.EscapesParams {
			if ep != ai {
				continue
			}
			pc.reportf(id.Pos(), "pooled value %s passed to %s, which retains it; the release obligation is no longer local", id.Name, fn.Name())
			f.bits |= poolEscaped
			st[obj] = f
			consumed = true
		}
	}
	return consumed
}

// isWaitGroupWait recognises wg.Wait() on a sync.WaitGroup.
func isWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" || len(call.Args) != 0 {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && recvTypeName(s.Recv()) == "WaitGroup"
}

// clearFences ends every pending goroutine borrow at a WaitGroup
// barrier.
func clearFences(st poolState) {
	for obj, f := range st {
		if f.bits&poolFenced != 0 {
			f.bits &^= poolFenced
			st[obj] = f
		}
	}
}

// releaseTarget resolves PutGrid(x) / x.Release() to the tracked object
// being released, or nil.
func (pc *poolChecker) releaseTarget(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "PutGrid" && len(call.Args) == 1 {
			return pc.trackedIdent(call.Args[0])
		}
		if fun.Sel.Name == "Release" && len(call.Args) == 0 {
			return pc.trackedIdent(fun.X)
		}
	case *ast.Ident:
		if fun.Name == "PutGrid" && len(call.Args) == 1 {
			return pc.trackedIdent(call.Args[0])
		}
	}
	return nil
}

// releaseArgName names the released value for diagnostics.
func releaseArgName(call *ast.CallExpr) string {
	var e ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Release" {
			e = fun.X
		} else if len(call.Args) == 1 {
			e = call.Args[0]
		}
	case *ast.Ident:
		if len(call.Args) == 1 {
			e = call.Args[0]
		}
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}

// trackedIdent resolves e to an identifier's object when e is a plain
// local name; release through anything else is out of scope.
func (pc *poolChecker) trackedIdent(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pc.pass.ObjectOf(id)
}

// deferStmt credits deferred releases: they run on every exit path, so
// the obligation is satisfied while the value stays usable.
func (pc *poolChecker) deferStmt(d *ast.DeferStmt, st poolState) {
	if obj := pc.releaseTarget(d.Call); obj != nil {
		if f, tracked := st[obj]; tracked {
			f.bits |= poolDeferred
			st[obj] = f
		}
		return
	}
	if isWaitGroupWait(pc.pass.Pkg.Info, d.Call) {
		pc.fenceDeferred = true
		return
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... PutGrid(x) ... }(): scan for releases of
		// tracked outer locals; other uses inside are borrows.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := pc.releaseTarget(call); obj != nil {
				if _, tracked := st[obj]; tracked {
					f := st[obj]
					f.bits |= poolDeferred
					st[obj] = f
				}
			}
			if isWaitGroupWait(pc.pass.Pkg.Info, call) {
				pc.fenceDeferred = true
			}
			return true
		})
		return
	}
	pc.uses(d.Call, st)
}

// goStmt marks tracked values crossing into a goroutine as pending a
// fence: a later sync.WaitGroup.Wait on the same path provably ends
// the borrow (the litho convolution fan-out), and a capture that never
// reaches a barrier is reported at exit — the pool discipline is
// single-owner, and a concurrent borrower outliving the release is
// exactly the bug class poolcheck exists for.
func (pc *poolChecker) goStmt(g *ast.GoStmt, st poolState) {
	marked := map[types.Object]bool{}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pc.pass.ObjectOf(id)
		if obj == nil || marked[obj] {
			return true
		}
		if f, ok := st[obj]; ok {
			marked[obj] = true
			f.bits |= poolFenced
			if f.cpos == token.NoPos {
				f.cpos = id.Pos()
			}
			st[obj] = f
		}
		return true
	})
}

func (pc *poolChecker) returnStmt(r *ast.ReturnStmt, st poolState) {
	for _, res := range r.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			if obj := pc.pass.ObjectOf(id); obj != nil {
				if f, tracked := st[obj]; tracked {
					if f.bits&poolLive != 0 {
						// Returning the live value directly makes this
						// function pool-returning: the summary records the
						// result index and every caller inherits the
						// obligation at its call site.
						f.bits |= poolEscaped
						st[obj] = f
					} else {
						pc.checkUse(id, f)
					}
					continue
				}
			}
		}
		ast.Inspect(res, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pc.pass.ObjectOf(id); obj != nil {
				if f, ok := st[obj]; ok {
					if f.bits&poolLive != 0 {
						pc.reportf(id.Pos(), "pooled value %s escapes through a composite return value; return it directly so callers inherit the obligation", id.Name)
						f.bits |= poolEscaped
						st[obj] = f
					} else {
						pc.checkUse(id, f)
					}
				}
			}
			return true
		})
	}
	pc.leakCheck(st)
}

// leakCheck fires at an exit path for every value still carrying an
// unsatisfied release obligation or an unfenced goroutine borrow. Leak
// diagnostics land on the acquire, fence diagnostics on the capture.
func (pc *poolChecker) leakCheck(st poolState) {
	for obj, f := range st {
		if f.bits&poolFenced != 0 && f.bits&poolEscaped == 0 && !pc.fenceDeferred {
			pc.reportf(f.cpos, "pooled value %s captured by goroutine; its lifetime is no longer bounded by this function", obj.Name())
			continue // the capture is the finding; a leak report would be noise
		}
		if f.bits&poolLive != 0 && f.bits&(poolDeferred|poolEscaped) == 0 {
			pc.reportf(f.pos, "pooled value %s acquired here is not released on every exit path", obj.Name())
		}
	}
}

// uses walks an arbitrary subtree checking tracked identifiers for
// use-after-release; function literals encountered here capture their
// environment and so count as escapes.
func (pc *poolChecker) uses(n ast.Node, st poolState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			pc.closureEscape(m, st, "captured by a closure that outlives this statement")
			return false
		case *ast.Ident:
			if obj := pc.pass.ObjectOf(m); obj != nil {
				if f, ok := st[obj]; ok {
					pc.checkUse(m, f)
				}
			}
		}
		return true
	})
}

// borrowUses checks uses inside a closure passed synchronously to a
// call: values are borrowed, not captured, so only use-after-release
// applies.
func (pc *poolChecker) borrowUses(lit *ast.FuncLit, st poolState) {
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pc.pass.ObjectOf(id); obj != nil {
				if f, ok := st[obj]; ok {
					pc.checkUse(id, f)
				}
			}
		}
		return true
	})
}

// closureEscape reports tracked values captured by a closure whose
// lifetime the analyzer cannot bound (assigned, returned, stored).
func (pc *poolChecker) closureEscape(lit *ast.FuncLit, st poolState, how string) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pc.pass.ObjectOf(id)
		if obj == nil || reported[obj] {
			return true
		}
		if f, ok := st[obj]; ok {
			reported[obj] = true
			pc.reportf(id.Pos(), "pooled value %s %s; its release can no longer be verified", id.Name, how)
			f.bits |= poolEscaped
			st[obj] = f
		}
		return true
	})
}

func (pc *poolChecker) checkUse(id *ast.Ident, f poolFact) {
	if f.bits&poolReleased != 0 && f.bits&poolLive == 0 {
		pc.reportf(id.Pos(), "pooled value %s used after release", id.Name)
	}
}

// isPoolAcquire reports whether call is one of the pool entry points.
func isPoolAcquire(call *ast.CallExpr) bool {
	name, ok := calleeName(call)
	return ok && poolAcquireNames[name]
}
