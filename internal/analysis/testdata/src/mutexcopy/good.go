// Known-good fixture for the mutexcopy analyzer: pointers everywhere a
// lock travels, composite-literal initialisation, and by-index
// iteration.
package fixture

import "sync"

type gauge struct {
	mu sync.Mutex
	n  int
}

func byPointer(g *gauge) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g *gauge) pointerReceiver() int {
	return g.n
}

// newGauge returns a fresh value: composite-literal initialisation is
// not a copy.
func newGauge() *gauge {
	g := gauge{n: 1}
	return &g
}

func sumByIndex(gs []*gauge) int {
	t := 0
	for i := range gs {
		t += gs[i].n
	}
	return t
}

// lockFree structs copy freely.
type lockFree struct{ a, b float64 }

func copyLockFree(v lockFree) lockFree {
	w := v
	return w
}
