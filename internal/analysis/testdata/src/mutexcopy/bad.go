// Known-bad fixture for the mutexcopy analyzer: by-value movement of
// lock-holding structs.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// nested embeds a lock two levels down; the walk must find it.
type nested struct {
	inner counter
}

func byValueParam(c counter) int { // want "parameter passes"
	return c.n
}

func (c counter) valueReceiver() int { // want "receiver passes"
	return c.n
}

func deepParam(v nested) int { // want "parameter passes"
	return v.inner.n
}

func snapshot(c *counter) int {
	cp := *c // want "assignment copies"
	return cp.n
}

func sumAll(cs []counter) int {
	t := 0
	for _, c := range cs { // want "range value copies"
		t += c.n
	}
	return t
}
