// Known-good fixture for the ctxflow analyzer: the disciplined
// cancellation shapes — consulting loops, forwarded contexts, the
// Run/RunContext compat pair, and deliberate job roots — none of which
// may be flagged.
package fixture

import (
	"context"
	"time"
)

func drainCtx(ctx context.Context, ticks <-chan int) int {
	total := 0
	for t := range ticks {
		if ctx.Err() != nil {
			return total
		}
		total += t
	}
	return total
}

// step consults its context, so relayCtx's loop below is covered by
// forwarding — the summary carries ChecksCtx through the call.
func step(ctx context.Context, ch chan int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	<-ch
	return nil
}

func relayCtx(ctx context.Context, ch chan int) error {
	for i := 0; i < 4; i++ {
		if err := step(ctx, ch); err != nil {
			return err
		}
	}
	return nil
}

// Engine is the Run/RunContext compat pair: Run's Background root is
// blessed by the sibling, and the sibling consults its context.
type Engine struct{ ch chan int }

func (e *Engine) Run() int { return e.RunContext(context.Background()) }

func (e *Engine) RunContext(ctx context.Context) int {
	total := 0
	for {
		select {
		case v := <-e.ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// timedJob derives a deliberate job root: Background feeding
// WithTimeout is the server.execute shape and is not second-guessed.
func timedJob(d time.Duration, ch chan int) int {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// RunLength is an exported verb that never blocks: no context needed.
func RunLength(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// waitQuiet blocks but is unexported; entry-point rule 4 only audits
// the exported surface.
func waitQuiet(ch chan struct{}) { <-ch }
