// Known-bad fixture for the ctxflow analyzer: every way a function can
// promise cancellation and then ignore it — an unused context
// parameter, blocking loops that never consult any context, invented
// root contexts in library code, and exported long-runner entry points
// with no context at all.
package fixture

import (
	"context"
	"time"
)

func unusedCtx(ctx context.Context, n int) int { // want "context parameter ctx is never used"
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func pollLoop(ctx context.Context, ticks <-chan int) error {
	for t := range ticks { // want "never consults a context"
		_ = t
	}
	return ctx.Err()
}

func retryLoop(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ { // want "never consults a context"
		time.Sleep(time.Millisecond)
	}
	return ctx.Err()
}

// waitOne blocks per call; its summary makes relayLoop's loop blocking
// even though no blocking atom is syntactically inside it.
func waitOne(ch chan int) int { return <-ch }

func relayLoop(ctx context.Context, ch chan int) int {
	total := 0
	for i := 0; i < 4; i++ { // want "never consults a context"
		total += waitOne(ch)
	}
	_ = ctx
	return total
}

func fetchStale(n int) int {
	ctx := context.Background() // want "accept a context.Context from the caller"
	_ = ctx
	return n
}

func work(ctx context.Context) error { return ctx.Err() }

func todoRoot() error {
	return work(context.TODO()) // want "accept a context.Context from the caller"
}

// Pump.Run is the internal/ilt Solver.Run shape: an exported
// long-runner verb whose call tree blocks, with no context parameter
// and no RunContext sibling.
type Pump struct{ ch chan int }

func (p *Pump) Run() int { // want "add a RunContext variant"
	total := 0
	for v := range p.ch {
		total += v
	}
	return total
}

func Solve(ch chan float64) float64 { // want "add a SolveContext variant"
	return <-ch
}
