// Known-bad fixture for the bufalias analyzer: scratch buffers shared
// across goroutine boundaries. The package is named fft because
// bufalias scopes itself to the parallel numeric kernels.
package fft

import "sync"

type grid struct{ data []complex128 }

func mulInto(dst, a, b *grid) {
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// hoistedScratch is the classic bad "optimisation": one scratch grid
// allocated outside the worker loop, convolved into by every worker.
func hoistedScratch(in *grid, workers int) {
	var wg sync.WaitGroup
	scratch := &grid{data: make([]complex128, len(in.data))}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mulInto(scratch, in, in) // want "shared scratch buffer scratch"
		}(w)
	}
	wg.Wait()
}

// fixedSlot writes one fixed element of a shared slice from every
// goroutine in the loop.
func fixedSlot(workers int) []float64 {
	acc := make([]float64, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc[0] = acc[0] + 1 // want "shared scratch buffer acc"
		}()
	}
	wg.Wait()
	return acc
}
