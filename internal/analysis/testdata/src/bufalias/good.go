// Known-good fixture for the bufalias analyzer: goroutine-owned
// scratch and per-worker sharding, the two sanctioned patterns.
package fft

import "sync"

type field struct{ data []float64 }

func scale(dst *field, k float64) {
	for i := range dst.data {
		dst.data[i] *= k
	}
}

// ownedScratch allocates the buffer inside the goroutine.
func ownedScratch(workers, n int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &field{data: make([]float64, n)}
			scale(scratch, 2)
		}()
	}
	wg.Wait()
}

// shardedStore writes accs[w] where w is the goroutine's own argument
// — the per-worker reduction pattern the simulator uses.
func shardedStore(workers, n int) [][]float64 {
	accs := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, n)
			for i := range local {
				local[i] = float64(w)
			}
			accs[w] = local
		}(w)
	}
	wg.Wait()
	return accs
}

// readShared reads a shared input from every goroutine; reads alone
// never alias.
func readShared(in *field, workers int) []float64 {
	sums := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s float64
			for _, v := range in.data {
				s += v
			}
			sums[w] = s
		}(w)
	}
	wg.Wait()
	return sums
}
