// Known-good fixture for the goleak analyzer: the disciplined pool
// patterns the repo's litho/fft/bigopc fan-outs use.
package fixture

import "sync"

// workerPool is the canonical shape: Add before launch, deferred Done,
// close the job channel, Wait before returning.
func workerPool(workers, n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = i * i
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// sendReceived: the launcher drains the channel itself.
func sendReceived(n int) int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			ch <- i
		}(i)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch
	}
	return total
}

// escapingChannel is returned to the caller, which owns the drain.
func escapingChannel(n int) chan int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			ch <- i
		}(i)
	}
	return ch
}

// paramWaitGroup: a WaitGroup owned by the caller is its drain problem.
func paramWaitGroup(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

// returnAfterWait: returns after the drain are fine.
func returnAfterWait(n int) int {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
	return n
}
