// Known-bad fixture for the goleak analyzer: fan-outs whose drain is
// missing, racy, or conditional.
package fixture

import "sync"

func noWait(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "wg.Wait is never called"
			defer wg.Done()
		}()
	}
}

func addInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "wg.Add inside the goroutine races with wg.Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func earlyReturn(n int, fail bool) error {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	if fail {
		return errFail // want "return between the goroutine launch and wg.Wait"
	}
	wg.Wait()
	return nil
}

var errFail error

func sendNoReceive(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) { // want "sends on ch but this function never receives"
			ch <- i
		}(i)
	}
}

func rangeNoClose(n int) {
	jobs := make(chan int, n)
	go func() { // want "ranges over jobs but this function never closes it"
		for j := range jobs {
			_ = j
		}
	}()
	for i := 0; i < n; i++ {
		jobs <- i
	}
}

func fireAndForgetLoop(xs []int) {
	for _, x := range xs {
		go func(x int) { // want "fan-out in a loop with no WaitGroup or channel drain"
			_ = x * x
		}(x)
	}
}
