// Known-good fixture for the nonblock analyzer: annotated functions
// that honour the contract, and unannotated ones that may block
// freely.
package fixture

// peek polls the head of the feed: select with a default case never
// blocks, including the receive inside the comm clause.
//
//cardopc:nonblocking
func peek(f *feed) (int, bool) {
	select {
	case v := <-f.ch:
		return v, true
	default:
		return 0, false
	}
}

// trySend is the other direction of the same poll.
//
//cardopc:nonblocking
func trySend(f *feed, v int) bool {
	select {
	case f.ch <- v:
		return true
	default:
		return false
	}
}

// spawn hands the slow work to its own goroutine; the caller never
// blocks.
//
//cardopc:nonblocking
func spawn(f *feed) {
	go func() {
		f.next()
	}()
}

// drainAll carries no directive, so it may block all it wants.
func drainAll(f *feed, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += f.next()
	}
	return total
}
