// Known-bad fixture for the nonblock analyzer: functions that declare
// the //cardopc:nonblocking contract and then block anyway — through a
// primitive atom, a channel range, or a module callee whose summary
// blocks.
package fixture

import "time"

type feed struct{ ch chan int }

// next pulls one value from the feed; its summary blocks.
func (f *feed) next() int { return <-f.ch }

// snapshot is served on the request path but drags in a blocking
// callee.
//
//cardopc:nonblocking
func snapshot(f *feed) (int, int) {
	v := f.next() // want "call to next may block"
	return v, v * 2
}

//cardopc:nonblocking
func flush(f *feed) int {
	total := 0
	for v := range f.ch { // want "range over channel"
		total += v
	}
	return total
}

//cardopc:nonblocking
func lazySleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep in a"
}

//cardopc:nonblocking
func sendOne(f *feed, v int) {
	f.ch <- v // want "channel send in a"
}
