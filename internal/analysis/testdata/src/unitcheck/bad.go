// Known-bad fixture for the unitcheck analyzer: arithmetic mixing
// nm-world quantities with pixel-raster quantities without an explicit
// pitch conversion.
package fixture

// Grid mirrors raster.Grid: Pitch is nm per pixel.
type Grid struct {
	Size  int
	Pitch float64
}

// Cfg mirrors a litho config: PitchNM is nm per pixel.
type Cfg struct {
	GridSize  int
	PitchNM   float64
	DefocusNM float64
}

func addMixed(g Grid, offsetNM float64) float64 {
	px := offsetNM / g.Pitch
	return px + offsetNM // want "mixes nm and pixel quantities"
}

func cmpMixed(c Cfg, spanPx float64) bool {
	return spanPx < c.DefocusNM // want "mixes nm and pixel quantities"
}

func viaVars(g Grid, widthNM float64) float64 {
	w := widthNM / g.Pitch // w is pixels now
	margin := widthNM
	return w - margin // want "mixes nm and pixel quantities"
}

func badStore(g Grid, dNM float64) float64 {
	var edgeNM float64
	edgeNM = dNM / g.Pitch // want "pixel-unit value assigned to nm-named variable edgeNM"
	return edgeNM
}

func badStorePx(g Grid, count float64) float64 {
	stepPx := count * g.Pitch // want "nm-unit value assigned to pixel-named variable stepPx"
	return stepPx
}
