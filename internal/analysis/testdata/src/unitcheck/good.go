// Known-good fixture for the unitcheck analyzer: explicit conversions
// through the pitch, unit-consistent arithmetic, and dimensionless
// constants.
package fixture

func extent(g Grid) float64 {
	return float64(g.Size) * g.Pitch // count * pitch -> nm
}

func toPixel(g Grid, xNM float64) float64 {
	return xNM/g.Pitch - 0.5 // px minus a dimensionless half-pixel offset
}

func nmOnly(c Cfg, haloNM float64) float64 {
	fovNM := float64(c.GridSize) * c.PitchNM
	return fovNM + 2*haloNM // nm + nm
}

func pxOnly(g Grid, aNM, bNM float64) float64 {
	ax := aNM / g.Pitch
	bx := bNM / g.Pitch
	return ax - bx // px - px
}

// viaHelper converts through a function call, which resets provenance:
// the helper owns the unit contract.
func viaHelper(g Grid, xNM float64) float64 {
	px := toPixel(g, xNM)
	return px + 1
}
