// Known-good fixture for the loopcapture analyzer: loop variables
// passed as arguments, per-worker result slots, and mutex-protected
// appends.
package fixture

import "sync"

func fanoutGood(n int) []int {
	var wg sync.WaitGroup
	out := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // argument, not capture
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

func appendLocked(n int) []int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shared []int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			shared = append(shared, i) // guarded by mu
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return shared
}

// captureOutsideLoop is fine: the captured variable is not a loop
// variable and the append happens in this goroutine only after Wait.
func captureOutsideLoop(x int) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		total = x * 2
	}()
	wg.Wait()
	return total
}
