// Known-bad fixture for the loopcapture analyzer: goroutines and
// defers capturing loop variables, and unsynchronised appends to
// shared slices.
package fixture

import "sync"

func fanoutBad(n int) []int {
	var wg sync.WaitGroup
	var shared []int
	out := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i * i               // want "go literal captures loop variable i"
			shared = append(shared, i)   // want "append to shared"
		}()
	}
	wg.Wait()
	return append(out, shared...)
}

func deferBad(xs []int) {
	sink := 0
	for _, x := range xs {
		defer func() {
			sink += x // want "defer literal captures loop variable x"
		}()
	}
	_ = sink
}
