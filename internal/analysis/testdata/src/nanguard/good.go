// Known-good fixture for the nanguard analyzer: guarded values,
// clamped Safe* wrappers, and risky results that never reach an index
// or accumulator.
package litho

import "math"

func accumulateGuarded(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		s := math.Sqrt(x)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		sum += s
	}
	return sum
}

func indexClamped(table []float64, x float64) float64 {
	return table[int(SafeSqrt(x))]
}

// plainUse returns a risky result without indexing or accumulating —
// the caller owns the guard, so no diagnostic here.
func plainUse(x float64) float64 {
	return math.Sqrt(x)
}

// SafeSqrt is an approved clamped wrapper; the Sqrt inside it is the
// wrapper's own business.
func SafeSqrt(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x)
}
