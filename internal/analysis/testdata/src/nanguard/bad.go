// Known-bad fixture for the nanguard analyzer: domain-limited math
// results reaching accumulators and indexes unguarded. The package is
// named litho because nanguard scopes itself to the numeric kernels.
package litho

import "math"

func accumulateBad(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += math.Sqrt(x) // want "used in an accumulation"
	}
	return sum
}

func indexBad(table []float64, x float64) float64 {
	return table[int(math.Log(x))] // want "used as an index"
}

func trackedBad(table []float64, dot float64) float64 {
	angle := math.Acos(dot) // want "assigned here"
	return table[int(angle*10)]
}
