// Known-bad fixture for the detorder analyzer: map iteration order
// leaking into ordered output — result slices, print streams, record
// writers.
package fixture

import (
	"fmt"
	"io"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a map range"
	}
	return keys
}

func printUnsorted(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%v\n", k, v) // want "fmt.Fprintf inside a map range"
	}
}

type recordWriter struct{ w io.Writer }

func (r *recordWriter) WriteRecord(b []byte) { r.w.Write(b) }

func streamUnsorted(r *recordWriter, m map[int][]byte) {
	for _, b := range m {
		r.WriteRecord(b) // want "WriteRecord call inside a map range"
	}
}

func nestedSink(m map[string][]int) []int {
	var out []int
	for _, vs := range m {
		for _, v := range vs {
			out = append(out, v) // want "append to out inside a map range"
		}
	}
	return out
}
