// Known-good fixture for the detorder analyzer: sorted-key iteration,
// the collect-then-sort idiom, and order-insensitive aggregation.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: order restored
	}
	sort.Strings(keys)
	return keys
}

func printSorted(w io.Writer, m map[string]float64) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%v\n", k, m[k]) // slice range, deterministic
	}
}

func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative: order cannot matter
	}
	return total
}

func buildMap(m map[string]int) map[int]string {
	inv := map[int]string{}
	for k, v := range m {
		inv[v] = k // map-to-map: no order observable
	}
	return inv
}

func perIterationSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // declared inside the loop
		n += len(local)
	}
	return n
}
