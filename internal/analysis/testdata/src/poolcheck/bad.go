// Known-bad fixture for the poolcheck analyzer: every way a pooled
// buffer's lifetime can go wrong — leaks on exit paths, double
// releases, use-after-release, and escapes out of the acquiring
// function.
package fixture

// Pool stubs mirroring the fft API shape; poolcheck matches by name.

type Grid struct{ Data []float64 }

type Workspace struct{ Acc []float64 }

type Cache struct{}

type Half struct{ FullW int }

func GetGrid(h, w int) *Grid { return &Grid{} }

func PutGrid(g *Grid) {}

func GetWorkspace(h, w int) *Workspace { return &Workspace{} }

func (w *Workspace) Release() {}

func NewForwardCache() *Cache { return &Cache{} }

func (c *Cache) Release() {}

func GetHalf(w, h int) *Half { return &Half{} }

func (h *Half) Release() {}

func use(g *Grid) {}

func useHalf(h *Half) {}

var errFail error

func leakEarlyReturn(n int, fail bool) error {
	g := GetGrid(n, n) // want "not released on every exit path"
	if fail {
		return errFail
	}
	PutGrid(g)
	return nil
}

func leakFallOff(n int) {
	g := GetGrid(n, n) // want "not released on every exit path"
	use(g)
}

func leakOneBranch(n int, keep bool) {
	g := GetGrid(n, n) // want "not released on every exit path"
	if keep {
		use(g)
	} else {
		PutGrid(g)
	}
}

func doubleRelease(n int) {
	g := GetGrid(n, n)
	PutGrid(g)
	PutGrid(g) // want "released twice"
}

func doubleWorkspaceRelease(n int) {
	ws := GetWorkspace(n, n)
	ws.Release()
	ws.Release() // want "released twice"
}

func leakHalf(n int, fail bool) error {
	hs := GetHalf(n, n) // want "not released on every exit path"
	if fail {
		return errFail
	}
	hs.Release()
	return nil
}

func doubleHalfRelease(n int) {
	hs := GetHalf(n, n)
	hs.Release()
	hs.Release() // want "released twice"
}

func useAfterHalfRelease(n int) {
	hs := GetHalf(n, n)
	hs.Release()
	useHalf(hs) // want "used after release"
}

func useAfterPut(n int) {
	g := GetGrid(n, n)
	PutGrid(g)
	use(g) // want "used after release"
}

func useAfterPutInCond(n int) bool {
	g := GetGrid(n, n)
	PutGrid(g)
	return g != nil // want "used after release"
}

// escapeReturn returns the live acquire directly: that is the blessed
// pool-returning shape (summary PooledResults), so the function itself
// is clean — the obligation moves to each call site below.
func escapeReturn(n int) *Grid {
	g := GetGrid(n, n)
	return g
}

func discardFromProvider(n int) {
	escapeReturn(n) // want "discarded"
}

func leakFromProvider(n int, fail bool) error {
	g := escapeReturn(n) // want "not released on every exit path"
	if fail {
		return errFail
	}
	PutGrid(g)
	return nil
}

func escapeCompositeReturn(n int) []*Grid {
	g := GetGrid(n, n)
	return []*Grid{g} // want "escapes through a composite return value"
}

type holder struct{ g *Grid }

func escapeField(h *holder, n int) {
	g := GetGrid(n, n)
	h.g = g // want "escapes into field"
}

func escapeGoroutine(n int) {
	g := GetGrid(n, n)
	go use(g) // want "captured by goroutine"
}

func releaseWhileFenced(n int) {
	g := GetGrid(n, n)
	go use(g) // want "captured by goroutine"
	PutGrid(g) // want "released while a goroutine may still use it"
}

func escapeClosure(n int) func() {
	g := GetGrid(n, n)
	f := func() { use(g) } // want "captured by a closure"
	return f
}

func overwriteWhileLive(n int) {
	g := GetGrid(n, n)
	g = GetGrid(n, n) // want "overwrites g while it still holds a live pooled value"
	PutGrid(g)
}

func discardBlank(n int) {
	_ = GetGrid(n, n) // want "discarded"
}

func discardBare(n int) {
	GetGrid(n, n) // want "discarded"
}

func unboundAcquire(h *holder, n int) {
	h.g = GetGrid(n, n) // want "bind it to a local"
}

func leakCache(n int, fail bool) error {
	c := NewForwardCache() // want "not released on every exit path"
	if fail {
		return errFail
	}
	c.Release()
	return nil
}

// releaseIt is a releasing helper: its summary records ReleasesParams
// [0], so passing a tracked value to it counts as the release.
func releaseIt(g *Grid) {
	PutGrid(g)
}

func doubleViaCallee(n int) {
	g := GetGrid(n, n)
	PutGrid(g)
	releaseIt(g) // want "released twice"
}

// stash retains its second parameter (summary EscapesParams), so a
// caller handing it a tracked value loses the local obligation.
func stash(h *holder, g *Grid) {
	h.g = g
}

func escapeViaCallee(h *holder, n int) {
	g := GetGrid(n, n)
	stash(h, g) // want "passed to stash, which retains it"
}
