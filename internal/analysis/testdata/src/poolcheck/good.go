// Known-good fixture for the poolcheck analyzer: the disciplined
// acquire/release shapes of the hot path, none of which may be flagged.
package fixture

import "sync"

func straightLine(n int) {
	g := GetGrid(n, n)
	use(g)
	PutGrid(g)
}

func deferredPut(n int, fail bool) error {
	g := GetGrid(n, n)
	defer PutGrid(g)
	if fail {
		return errFail
	}
	use(g)
	return nil
}

func deferredRelease(n int) {
	ws := GetWorkspace(n, n)
	defer ws.Release()
	_ = ws.Acc
}

func deferredCacheRelease(n int) {
	c := NewForwardCache()
	defer c.Release()
	_ = c
}

func deferredClosureRelease(n int) {
	g := GetGrid(n, n)
	defer func() {
		PutGrid(g)
	}()
	use(g)
}

// halfSpectrumPattern is the rfft2 hot path (litho.MaskFreqInto):
// acquire the pooled half-spectrum, transform into it, expand to the
// full grid, release.
func halfSpectrumPattern(n int) {
	hs := GetHalf(n, n)
	useHalf(hs)
	hs.Release()
}

func deferredHalfRelease(n int, fail bool) error {
	hs := GetHalf(n, n)
	defer hs.Release()
	if fail {
		return errFail
	}
	useHalf(hs)
	return nil
}

func bothBranchesRelease(n int, flip bool) {
	g := GetGrid(n, n)
	if flip {
		use(g)
		PutGrid(g)
	} else {
		PutGrid(g)
	}
}

func releaseBeforeEveryReturn(n int, fail bool) error {
	g := GetGrid(n, n)
	if fail {
		PutGrid(g)
		return errFail
	}
	use(g)
	PutGrid(g)
	return nil
}

// panicPath acquires and then may panic: crash paths carry no release
// obligation (the process is gone), and the happy path releases.
func panicPath(n, m int) {
	g := GetGrid(n, n)
	if n != m {
		panic("size mismatch")
	}
	use(g)
	PutGrid(g)
}

// workerHandOff is the litho fan-out pattern: each worker acquires a
// workspace and parks it in the shared slice; the launcher drains and
// releases after the barrier. The index store transfers ownership
// silently, and the drain releases range variables poolcheck never
// tracked.
func workerHandOff(n, workers int) {
	wss := make([]*Workspace, workers)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			ws := GetWorkspace(n, n)
			ws.Acc[0] = float64(w)
			wss[w] = ws
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, ws := range wss {
		_ = ws.Acc
		ws.Release()
	}
}

// loopHandOff acquires into a fresh local each iteration and hands the
// value to the slice owner: the hand-off ends the local's obligation, so
// the back-edge re-acquire is clean (the BatchAerialAll spectrum loop).
func loopHandOff(n, b int) []*Grid {
	mfs := make([]*Grid, b)
	for i := 0; i < b; i++ {
		g := GetGrid(n, n)
		use(g)
		mfs[i] = g
	}
	return mfs
}

// borrowedByCallback lends the grid to a synchronously-invoked closure;
// the release stays with the caller.
func borrowedByCallback(n int, each func(func(int))) {
	g := GetGrid(n, n)
	each(func(i int) {
		g.Data[i] = 0
	})
	PutGrid(g)
}

func loopLocalAcquire(n, iters int) {
	for i := 0; i < iters; i++ {
		g := GetGrid(n, n)
		use(g)
		PutGrid(g)
	}
}

func earlyReturnBeforeAcquire(n int, skip bool) {
	if skip {
		return
	}
	g := GetGrid(n, n)
	use(g)
	PutGrid(g)
}

// providerCallerReleases consumes a pool-returning function
// (escapeReturn in bad.go): the summary hands the obligation to this
// call site, and the release here discharges it.
func providerCallerReleases(n int) {
	g := escapeReturn(n)
	use(g)
	PutGrid(g)
}

// releaseViaHelper discharges the obligation through a callee whose
// summary releases the parameter (releaseIt in bad.go).
func releaseViaHelper(n int) {
	g := GetGrid(n, n)
	use(g)
	releaseIt(g)
}

// fencedGoroutineBorrow is the litho convolution fan-out: workers
// borrow the grid, wg.Wait fences the borrow, and only then is the
// value released.
func fencedGoroutineBorrow(n, workers int) {
	g := GetGrid(n, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(g)
		}()
	}
	wg.Wait()
	PutGrid(g)
}

// deferFencedBorrow fences with a deferred barrier instead of an
// inline one: the Wait still runs on every exit.
func deferFencedBorrow(n int) {
	g := GetGrid(n, n)
	defer PutGrid(g)
	var wg sync.WaitGroup
	wg.Add(1)
	defer wg.Wait()
	go func() {
		defer wg.Done()
		use(g)
	}()
}

// cacheOwner mirrors fft.ForwardCache: a method that releases every
// pooled value reachable from its receiver (summary ReleasesRecvHeld)
// makes the type a legitimate owner, so storing an acquire into its
// fields is an ownership transfer, not an escape.
type cacheOwner struct{ grids []*Grid }

func (c *cacheOwner) Release() {
	for _, g := range c.grids {
		if g != nil {
			PutGrid(g)
		}
	}
}

func (c *cacheOwner) fill(n int) {
	c.grids[0] = GetGrid(n, n)
}
