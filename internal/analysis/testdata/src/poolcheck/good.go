// Known-good fixture for the poolcheck analyzer: the disciplined
// acquire/release shapes of the hot path, none of which may be flagged.
package fixture

func straightLine(n int) {
	g := GetGrid(n, n)
	use(g)
	PutGrid(g)
}

func deferredPut(n int, fail bool) error {
	g := GetGrid(n, n)
	defer PutGrid(g)
	if fail {
		return errFail
	}
	use(g)
	return nil
}

func deferredRelease(n int) {
	ws := GetWorkspace(n, n)
	defer ws.Release()
	_ = ws.Acc
}

func deferredCacheRelease(n int) {
	c := NewForwardCache()
	defer c.Release()
	_ = c
}

func deferredClosureRelease(n int) {
	g := GetGrid(n, n)
	defer func() {
		PutGrid(g)
	}()
	use(g)
}

func bothBranchesRelease(n int, flip bool) {
	g := GetGrid(n, n)
	if flip {
		use(g)
		PutGrid(g)
	} else {
		PutGrid(g)
	}
}

func releaseBeforeEveryReturn(n int, fail bool) error {
	g := GetGrid(n, n)
	if fail {
		PutGrid(g)
		return errFail
	}
	use(g)
	PutGrid(g)
	return nil
}

// panicPath acquires and then may panic: crash paths carry no release
// obligation (the process is gone), and the happy path releases.
func panicPath(n, m int) {
	g := GetGrid(n, n)
	if n != m {
		panic("size mismatch")
	}
	use(g)
	PutGrid(g)
}

// workerHandOff is the litho fan-out pattern: each worker acquires a
// workspace and parks it in the shared slice; the launcher drains and
// releases after the barrier. The index store transfers ownership
// silently, and the drain releases range variables poolcheck never
// tracked.
func workerHandOff(n, workers int) {
	wss := make([]*Workspace, workers)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			ws := GetWorkspace(n, n)
			ws.Acc[0] = float64(w)
			wss[w] = ws
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, ws := range wss {
		_ = ws.Acc
		ws.Release()
	}
}

// borrowedByCallback lends the grid to a synchronously-invoked closure;
// the release stays with the caller.
func borrowedByCallback(n int, each func(func(int))) {
	g := GetGrid(n, n)
	each(func(i int) {
		g.Data[i] = 0
	})
	PutGrid(g)
}

func loopLocalAcquire(n, iters int) {
	for i := 0; i < iters; i++ {
		g := GetGrid(n, n)
		use(g)
		PutGrid(g)
	}
}

func earlyReturnBeforeAcquire(n int, skip bool) {
	if skip {
		return
	}
	g := GetGrid(n, n)
	use(g)
	PutGrid(g)
}

// allowedEscape shows a documented hand-off: the allow directive
// records the contract and suppresses the escape diagnostic.
func allowedEscape(n int) *Grid {
	g := GetGrid(n, n)
	return g //cardopc:allow poolcheck ownership documented: caller must PutGrid
}
