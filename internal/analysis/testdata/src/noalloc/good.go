// Known-good fixture for the noalloc analyzer: allocation-free shapes,
// the blessed cold-path carve-outs, and unannotated functions that may
// allocate freely.
package fixture

// unannotated functions are out of scope entirely.
func unannotatedAllocates(n int) []float64 {
	return make([]float64, n)
}

//cardopc:noalloc
func goodScratchReuse(dst, src []float64) {
	for i := range src {
		dst[i] = 2 * src[i]
	}
}

//cardopc:noalloc
func goodValueStruct(x, y float64) float64 {
	v := vec{x: x, y: y} // value literal stays on the stack
	return v.x + v.y
}

//cardopc:noalloc
func goodPointerArg(v *vec) {
	sink(v) // pointers are a single word; no boxing allocation
}

//cardopc:noalloc
func goodNonCapturingClosure(xs []float64) float64 {
	f := func(a float64) float64 { return a * a }
	s := 0.0
	for _, x := range xs {
		s += f(x)
	}
	return s
}

type gate struct{}

func (gate) Enabled() bool { return false }

func (gate) Emit(v interface{}) {}

var tele gate

type iterRecord struct{ i int }

// goodEnabledGuard: the branch behind an Enabled() gate is the obs slow
// path — its allocations are pinned elsewhere and exempt here.
//
//cardopc:noalloc
func goodEnabledGuard(n int) {
	for i := 0; i < n; i++ {
		if tele.Enabled() {
			tele.Emit(&iterRecord{i: i})
		}
	}
}

// goodPanicGuard: a size-guard panic allocates its message exactly
// once, on the crash path; that branch is exempt.
//
//cardopc:noalloc
func goodPanicGuard(n, m int, name string) {
	if n != m {
		panic("size mismatch in " + name)
	}
}

// goodAllowed: a documented allocation carries an inline allow instead
// of weakening the annotation.
//
//cardopc:noalloc
func goodAllowed(n int) []int {
	return make([]int, n) //cardopc:allow noalloc one-time setup path, never in the descent loop
}
