// Known-bad fixture for the noalloc analyzer: each class of allocation
// site inside a //cardopc:noalloc function.
package fixture

type vec struct{ x, y float64 }

func sink(v interface{}) {}

//cardopc:noalloc
func badMake(n int) {
	buf := make([]float64, n) // want "make allocates"
	_ = buf
}

//cardopc:noalloc
func badNew() {
	p := new(vec) // want "new allocates"
	_ = p
}

//cardopc:noalloc
func badSliceLit() {
	sl := []int{1, 2, 3} // want "slice literal allocates"
	_ = sl
}

//cardopc:noalloc
func badMapLit() {
	m := map[string]int{} // want "map literal allocates"
	_ = m
}

//cardopc:noalloc
func badPtrLit() *vec {
	return &vec{x: 1} // want "composite literal allocates"
}

//cardopc:noalloc
func badAppend(dst []int, v int) []int {
	return append(dst, v) // want "append may grow"
}

//cardopc:noalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//cardopc:noalloc
func badConversion(s string) int {
	b := []byte(s) // want "conversion copies"
	return len(b)
}

//cardopc:noalloc
func badBoxingArg(x float64) {
	sink(x) // want "boxes a concrete value"
}

//cardopc:noalloc
func badBoxingReturn(x int) interface{} {
	return x // want "boxes a concrete value"
}

//cardopc:noalloc
func badCapturingClosure(n int) int {
	f := func() int { return n } // want "closure captures"
	return f()
}

//cardopc:noalloc
func badAllocInLoop(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		t := make([]float64, 1) // want "make allocates"
		t[0] = xs[i]
		s += t[0]
	}
	return s
}
