// Known-good fixture for the floatcmp analyzer: sentinel tests,
// constant folding, epsilon helpers and explicit allows.
package fixture

import "math"

type config struct{ Dose float64 }

const half = 0.5

func cmpGood(a, b float64, c config, xs []float64) bool {
	if c.Dose == 0 { // sentinel test of a stored field
		return false
	}
	if a == 0 { // sentinel test of a stored variable
		return false
	}
	if xs[1] != 0 { // sentinel test of a stored element
		return false
	}
	if half == 0.5 { // both sides constant-folded
		return true
	}
	return ApproxEq(a, b, 1e-9)
}

// ApproxEq is an approved epsilon helper: exact comparison against the
// bound is its job.
func ApproxEq(a, b, tol float64) bool {
	return a == b || math.Abs(a-b) <= tol
}

func allowed(a, b float64) bool {
	//cardopc:allow floatcmp fixture demonstrates the inline directive
	return a*2 == b
}
