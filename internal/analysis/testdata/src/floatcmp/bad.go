// Known-bad fixture for the floatcmp analyzer: exact equality on
// computed floating-point values.
package fixture

func cmpBad(a, b float64, xs []float64) bool {
	if a == b { // want "== on float operands"
		return true
	}
	if a+1 != b { // want "!= on float operands"
		return false
	}
	return xs[0]*2 == 4.0 // want "== on float operands"
}

func lenBad(norm func() float64) bool {
	return norm() == 0 // want "== on float operands"
}
