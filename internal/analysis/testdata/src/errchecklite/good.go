// Known-good fixture for the errcheck-lite analyzer: handled errors,
// explicit discards, deferred closes, and the excused
// cannot-usefully-fail set.
package fixture

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit, reviewable discard
	return nil
}

func deferredClose(f *os.File) {
	defer f.Close() // deferred-Close idiom is excused
}

func excused(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("ok") // bytes.Buffer never fails
	var sb strings.Builder
	sb.WriteString("ok")             // strings.Builder never fails
	fmt.Println(buf.String())        // stdout printing
	fmt.Fprintf(os.Stderr, "note\n") // std stream printing
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "payload %s\n", sb.String()) // sticky bufio error...
	bw.WriteByte('\n')                           // ...also sticky...
	return bw.Flush()                            // ...surfaces at the mandatory Flush
}
