// Known-bad fixture for the errcheck-lite analyzer: silently discarded
// error returns.
package fixture

import (
	"errors"
	"io"
	"os"
)

func work() error { return errors.New("boom") }

func multi() (int, error) { return 0, errors.New("boom") }

func dropPlain() {
	work() // want "discards its error"
}

func dropTuple() {
	multi() // want "discards its error"
}

func dropClose(f *os.File) {
	f.Close() // want "discards its error"
}

func dropFprintf(w io.Writer) {
	// An arbitrary writer is not an excused destination.
	io.WriteString(w, "data") // want "discards its error"
}
