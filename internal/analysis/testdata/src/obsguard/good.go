// Known-good fixture for the obsguard analyzer: guarded emission, and
// emission outside loops where a per-call record is fine.
package fixture

type span struct{}

func (span) Enabled() bool { return false }

func goodGuardedLoop(n int) {
	for i := 0; i < n; i++ {
		if obs.Enabled() {
			obs.Emit(&iterRec{i: i})
		}
	}
}

func goodSpanGuard(n int) {
	sp := span{}
	for i := 0; i < n; i++ {
		if sp.Enabled() {
			obs.Emit(i)
		}
	}
}

func goodGuardOutsideLoop(n int) {
	if obs.Enabled() {
		for i := 0; i < n; i++ {
			obs.Emit(i)
		}
	}
}

func goodOutsideLoop(n int) {
	obs.Emit(n) // one record per call, not per iteration
}

func goodGuardWithExtraCondition(n int, verbose bool) {
	for i := 0; i < n; i++ {
		if verbose && obs.Enabled() {
			obs.Emit(i)
		}
	}
}

func goodAllowed(n int) {
	for i := 0; i < n; i++ {
		obs.Emit(i) //cardopc:allow obsguard sampling loop runs at most 8 iterations
	}
}
