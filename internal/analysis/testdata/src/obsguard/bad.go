// Known-bad fixture for the obsguard analyzer: telemetry emission in
// loops without the Enabled() gate.
package fixture

type obsAPI struct{}

func (obsAPI) Emit(rec interface{}) {}

func (obsAPI) Enabled() bool { return false }

var obs obsAPI

type iterRec struct{ i int }

func badForLoop(n int) {
	for i := 0; i < n; i++ {
		obs.Emit(&iterRec{i: i}) // want "without an Enabled"
	}
}

func badRangeLoop(xs []int) {
	for _, x := range xs {
		obs.Emit(x) // want "without an Enabled"
	}
}

func badWrongGuard(n int, verbose bool) {
	for i := 0; i < n; i++ {
		if verbose {
			obs.Emit(i) // want "without an Enabled"
		}
	}
}

func badNestedLoop(n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			obs.Emit(i * j) // want "without an Enabled"
		}
	}
}

func badWorkerClosure(n int) {
	go func() {
		for i := 0; i < n; i++ {
			obs.Emit(i) // want "without an Enabled"
		}
	}()
}

func badGuardThenUnguarded(n int) {
	for i := 0; i < n; i++ {
		if obs.Enabled() {
			obs.Emit(i)
		}
		obs.Emit(i + 1) // want "without an Enabled"
	}
}
