// Scoped-emit fixtures for the obsguard analyzer: the scope.Emit
// spelling (obs.Scope) must sit behind the same Enabled() gate as
// ambient obs.Emit. Scope here is a local stub matched by its named
// type, the same way the analyzer matches the real obs.Scope.
package fixture

type Scope struct{}

func (Scope) Emit(rec interface{}) {}

func (Scope) Enabled() bool { return false }

func (Scope) Count(name string, n int64) {}

func badScopedForLoop(sc Scope, n int) {
	for i := 0; i < n; i++ {
		sc.Emit(&iterRec{i: i}) // want "without an Enabled"
	}
}

func badScopedRangeLoop(sc Scope, xs []int) {
	for _, x := range xs {
		sc.Emit(x) // want "without an Enabled"
	}
}

func badScopedPointerRecv(sc *Scope, n int) {
	for i := 0; i < n; i++ {
		sc.Emit(i) // want "without an Enabled"
	}
}

func badScopedWorkerClosure(sc Scope, n int) {
	go func() {
		for i := 0; i < n; i++ {
			sc.Emit(i) // want "without an Enabled"
		}
	}()
}

func goodScopedGuardedLoop(sc Scope, n int) {
	for i := 0; i < n; i++ {
		if sc.Enabled() {
			sc.Emit(&iterRec{i: i})
		}
	}
}

func goodScopedSpanGuard(sc Scope, n int) {
	sp := span{}
	for i := 0; i < n; i++ {
		if sp.Enabled() {
			sc.Emit(i)
		}
	}
}

func goodScopedOutsideLoop(sc Scope, n int) {
	sc.Emit(n) // one record per call, not per iteration
}

func goodScopedCountInLoop(sc Scope, n int) {
	for i := 0; i < n; i++ {
		sc.Count("iter", 1) // counters are allocation-free; only Emit needs the gate
	}
}
