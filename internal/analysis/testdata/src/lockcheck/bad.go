// Known-bad fixture for the lockcheck analyzer: locks that miss an
// exit path, same-path re-acquisition (directly and through a callee
// summary), blocking work under a held mutex, and panics that unwind
// with the lock still held.
package fixture

import (
	"sync"
	"time"
)

type Box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int
	sig chan struct{}
}

var errLock error

func (b *Box) MissingUnlock(fail bool) error {
	b.mu.Lock() // want "not unlocked on every exit path"
	if fail {
		return errLock
	}
	b.n++
	b.mu.Unlock()
	return nil
}

func (b *Box) MissingRUnlock(skip bool) int {
	b.rw.RLock() // want "not read-unlocked on every exit path"
	if skip {
		return 0
	}
	n := b.n
	b.rw.RUnlock()
	return n
}

func (b *Box) DoubleLock() {
	b.mu.Lock()
	b.mu.Lock() // want "acquired again while already held"
	b.n++
	b.mu.Unlock()
	b.mu.Unlock()
}

func (b *Box) ReadWhileWrite() {
	b.rw.Lock()
	b.rw.RLock() // want "read-locked while write-held"
	b.n++
	b.rw.RUnlock()
	b.rw.Unlock()
}

func (b *Box) SendHeld() {
	b.mu.Lock()
	b.sig <- struct{}{} // want "channel send while b.mu is held"
	b.mu.Unlock()
}

func (b *Box) SleepHeld() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while b.mu is held"
	b.mu.Unlock()
}

// wait blocks; its summary turns the call below into a finding even
// though no blocking atom is syntactically under the lock.
func (b *Box) wait() {
	<-b.sig
}

func (b *Box) WaitHeld() {
	b.mu.Lock()
	b.wait() // want "call to wait may block while b.mu is held"
	b.mu.Unlock()
}

// bump locks the receiver mutex; calling it with b.mu already held is
// a self-deadlock the summary layer sees through the call.
func (b *Box) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *Box) Reenter() {
	b.mu.Lock()
	b.bump() // want "acquires b.mu which is already held"
	b.mu.Unlock()
}

var tableMu sync.Mutex

var table []int

func resetTable() {
	tableMu.Lock()
	table = nil
	tableMu.Unlock()
}

func GlobalReenter() {
	tableMu.Lock()
	resetTable() // want "acquires tableMu which is already held"
	tableMu.Unlock()
}

func (b *Box) PanicHeld(bad bool) {
	b.mu.Lock()
	if bad {
		panic("bad") // want "still held at panic"
	}
	b.n++
	b.mu.Unlock()
}
