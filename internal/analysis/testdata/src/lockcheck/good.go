// Known-good fixture for the lockcheck analyzer: the disciplined lock
// shapes of the daemon — deferred unlocks, manual per-branch release
// sequences, polls under a read lock, and hierarchical locking — none
// of which may be flagged.
package fixture

import "sync"

type Counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// branchUnlock is the Job.Cancel shape: a manual unlock on every
// branch of a switch-like sequence.
func (c *Counter) branchUnlock(fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errLock
	}
	c.n++
	c.mu.Unlock()
	return nil
}

func (c *Counter) readSnapshot() (int, int) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.n, c.n * 2
}

// publish blocks only after the release: lock-compute-unlock-send.
func (c *Counter) publish() {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	c.ch <- v
}

// tryPublish is the queue.enqueue backpressure pattern: the send inside
// a select with a default case is a poll, not a block.
func (c *Counter) tryPublish() bool {
	c.rw.RLock()
	defer c.rw.RUnlock()
	select {
	case c.ch <- c.n:
		return true
	default:
		return false
	}
}

// deferredClosure releases through a deferred closure; the credit is
// scanned out of the literal body.
func (c *Counter) deferredClosure() {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	c.n++
}

// pair demonstrates hierarchical locking, which is deliberately out of
// scope: Inc locks p.b.mu while p.a.mu is held — a different key.
type pair struct {
	a, b Counter
}

func (p *pair) bothInc() {
	p.a.mu.Lock()
	p.b.Inc()
	p.a.mu.Unlock()
}
