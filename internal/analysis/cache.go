package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// CacheVersion is folded into every package cache key; bump it whenever
// the Diagnostic encoding, the FuncSummary schema or analyzer semantics
// change in a way old entries cannot represent. v3 added interprocedural
// function summaries to the entry — the version string stands in for the
// summary schema, so a schema change invalidates every entry, and the
// recursive dep-key folding below re-summarises dependents whenever a
// callee package's sources change.
const CacheVersion = "cardopc-vet-cache-v3"

// DefaultCacheDirName is the cache directory cardopc-vet -incremental
// uses under the module root when -cache-dir is not given.
const DefaultCacheDirName = ".cardopc-vet-cache"

// scannedPackage is the cheap survey view of one module package: file
// content hashes and intra-module imports, gathered with
// parser.ImportsOnly so an all-hit warm run never pays for full parsing
// or type-checking (the stdlib source importer dominates a cold run).
type scannedPackage struct {
	rel     string   // module-root-relative slash path; "." for the root package
	dir     string   // absolute source directory
	files   []string // non-test source names, sorted (os.ReadDir order)
	hashes  []string // sha256 content hashes, parallel to files
	imports []string // intra-module dependencies as rel paths, sorted
	key     string   // cache key, filled in by computeKeys
}

// importPath renders the package's full import path under modPath.
func (p *scannedPackage) importPath(modPath string) string {
	if p.rel == "." {
		return modPath
	}
	return modPath + "/" + p.rel
}

// scanModule surveys every non-test package under root. Only import
// clauses are parsed; function bodies are never touched.
func scanModule(root, modPath string) ([]*scannedPackage, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*scannedPackage
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		sp := &scannedPackage{rel: filepath.ToSlash(rel), dir: dir}
		deps := map[string]bool{}
		for _, e := range ents {
			if !isSourceFile(e) {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			if !buildTagIncluded(data) {
				continue // mirror the loader: tag-excluded files are invisible
			}
			sum := sha256.Sum256(data)
			sp.files = append(sp.files, e.Name())
			sp.hashes = append(sp.hashes, hex.EncodeToString(sum[:]))
			f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				if r, ok := relImportPath(modPath, strings.Trim(imp.Path.Value, `"`)); ok {
					deps[r] = true
				}
			}
		}
		if len(sp.files) == 0 {
			continue
		}
		for dep := range deps {
			sp.imports = append(sp.imports, dep)
		}
		sort.Strings(sp.imports)
		pkgs = append(pkgs, sp)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].rel < pkgs[j].rel })
	return pkgs, nil
}

// relImportPath converts an import path to a module-root-relative path,
// reporting false for imports outside the module (stdlib dependencies
// are covered by folding the toolchain version into every key).
func relImportPath(modPath, imp string) (string, bool) {
	if imp == modPath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(imp, modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// computeKeys assigns each package a cache key covering the cache
// format, the toolchain, the analyzer set, the package's own file
// contents and — recursively — the keys of its intra-module
// dependencies, so editing one package invalidates every dependent.
func computeKeys(pkgs []*scannedPackage, analyzers []*Analyzer) error {
	byRel := make(map[string]*scannedPackage, len(pkgs))
	for _, p := range pkgs {
		byRel[p.rel] = p
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	suite := strings.Join(names, ",")

	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *scannedPackage) error
	visit = func(p *scannedPackage) error {
		switch state[p.rel] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", p.rel)
		case 2:
			return nil
		}
		state[p.rel] = 1
		h := sha256.New()
		fprintf(h, "%s\ngo %s\nanalyzers %s\npkg %s\n", CacheVersion, runtime.Version(), suite, p.rel)
		for i, name := range p.files {
			fprintf(h, "file %s %s\n", name, p.hashes[i])
		}
		for _, imp := range p.imports {
			dep, ok := byRel[imp]
			if !ok {
				continue
			}
			if err := visit(dep); err != nil {
				return err
			}
			fprintf(h, "dep %s %s\n", imp, dep.key)
		}
		p.key = hex.EncodeToString(h.Sum(nil))
		state[p.rel] = 2
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return err
		}
	}
	return nil
}

// cacheEntry is one package's persisted result: the key it was computed
// under, its diagnostics (after inline //cardopc:allow filtering,
// before allowlist-file filtering — so stale-entry detection still sees
// suppressed findings on warm runs) and the interprocedural summaries
// of its functions. Diagnostic filenames are stored root-relative so
// the cache survives a checkout move.
//
// The summaries are not re-read to skip analysis — a miss reloads its
// import closure and recomputes them from source, which is what makes
// cold and warm diagnostics byte-identical — but persisting them pins
// the schema to the cache key and makes every run's interprocedural
// state inspectable on disk.
type cacheEntry struct {
	Key       string                 `json:"key"`
	Diags     []Diagnostic           `json:"diags"`
	Summaries map[string]FuncSummary `json:"summaries,omitempty"`
}

// cacheFileName flattens a package's rel path into one file name.
func cacheFileName(rel string) string {
	if rel == "." {
		return "_root_.json"
	}
	return strings.ReplaceAll(rel, "/", "__") + ".json"
}

func readCacheEntry(cacheDir, rel string) (*cacheEntry, error) {
	data, err := os.ReadFile(filepath.Join(cacheDir, cacheFileName(rel)))
	if err != nil {
		return nil, err
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, err
	}
	return &ent, nil
}

func writeCacheEntry(cacheDir, rel string, ent *cacheEntry) error {
	data, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cacheDir, cacheFileName(rel)), data, 0o644)
}

// rebasedDiags returns a copy of diags with filenames re-rooted: toward
// the cache (abs=false) they become root-relative slash paths, and back
// out (abs=true) they become absolute host paths again.
func rebasedDiags(root string, diags []Diagnostic, abs bool) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if abs {
			d.Pos.Filename = filepath.Join(root, filepath.FromSlash(d.Pos.Filename))
		} else if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		out[i] = d
	}
	return out
}

// IncrementalResult is what RunIncremental produced and how much of it
// came from the cache.
type IncrementalResult struct {
	// Diags is the combined, sorted diagnostic list — identical to what
	// Run over a full LoadModule would report.
	Diags []Diagnostic
	// Hits counts packages served from the cache; Misses counts packages
	// re-analyzed this run. Hits+Misses is the module's package count.
	Hits, Misses int
}

// RunIncremental is the cache-backed equivalent of LoadModule+Run: it
// hashes every package, serves unchanged ones from cacheDir and
// re-analyzes only the misses (loading just their dependency closure
// for type-checking). An unchanged module therefore skips parsing and
// type-checking entirely, which is where a cold run spends nearly all
// of its time. cacheDir defaults to DefaultCacheDirName under root.
func RunIncremental(root, cacheDir string, analyzers []*Analyzer, tm *Timings) (*IncrementalResult, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	if cacheDir == "" {
		cacheDir = filepath.Join(root, DefaultCacheDirName)
	}
	pkgs, err := scanModule(root, modPath)
	if err != nil {
		return nil, err
	}
	if err := computeKeys(pkgs, analyzers); err != nil {
		return nil, err
	}
	byRel := make(map[string]*scannedPackage, len(pkgs))
	for _, p := range pkgs {
		byRel[p.rel] = p
	}

	valid := map[string]*cacheEntry{}
	var misses []*scannedPackage
	for _, p := range pkgs {
		start := time.Now()
		if ent, err := readCacheEntry(cacheDir, p.rel); err == nil && ent.Key == p.key {
			valid[p.rel] = ent
			tm.addPackage(p.importPath(modPath), time.Since(start), true)
		} else {
			misses = append(misses, p)
		}
	}
	res := &IncrementalResult{Hits: len(pkgs) - len(misses), Misses: len(misses)}

	if len(misses) > 0 {
		// Type-checking a miss needs its intra-module dependencies loaded
		// too, so the subset is the misses' transitive import closure.
		need := map[string]bool{}
		var include func(rel string)
		include = func(rel string) {
			if need[rel] {
				return
			}
			need[rel] = true
			for _, imp := range byRel[rel].imports {
				if _, ok := byRel[imp]; ok {
					include(imp)
				}
			}
		}
		missSet := map[string]bool{}
		for _, p := range misses {
			missSet[p.rel] = true
			include(p.rel)
		}
		var dirs []string
		for _, p := range pkgs { // pkgs is sorted: deterministic subset order
			if need[p.rel] {
				dirs = append(dirs, p.dir)
			}
		}
		mod, err := loadModuleDirs(root, modPath, dirs)
		if err != nil {
			return nil, err
		}
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return nil, err
		}
		for _, pkg := range mod.Pkgs {
			rel, ok := relImportPath(modPath, pkg.Path)
			if !ok || !missSet[rel] {
				continue // dependency loaded only for type-checking
			}
			diags := RunPackage(mod, pkg, analyzers, tm)
			ent := &cacheEntry{
				Key:       byRel[rel].key,
				Diags:     rebasedDiags(root, diags, false),
				Summaries: mod.Interproc().PackageSummaries(pkg),
			}
			if err := writeCacheEntry(cacheDir, rel, ent); err != nil {
				return nil, err
			}
			valid[rel] = ent
		}
	}

	for _, p := range pkgs {
		if ent := valid[p.rel]; ent != nil {
			res.Diags = append(res.Diags, rebasedDiags(root, ent.Diags, true)...)
		}
	}
	sortDiagnostics(res.Diags)
	return res, nil
}
