package orc

import (
	"math"
	"testing"

	"cardopc/internal/geom"
	"cardopc/internal/raster"
)

// grid is the shared test raster.
func grid() raster.Grid { return raster.Grid{Size: 128, Pitch: 4} }

// aerialFromBlobs builds a synthetic aerial image: intensity 0.45 inside
// the blobs (sigmoid edges), ~0 elsewhere.
func aerialFromBlobs(g raster.Grid, blobs []geom.Polygon) *raster.Field {
	f := raster.NewField(g)
	for _, b := range blobs {
		f.FillPolygon(b, 4)
	}
	f.Clamp01()
	// Blur-free binary-ish aerial at 0.45 peak.
	for i, v := range f.Data {
		f.Data[i] = 0.45 * v
	}
	return f
}

func TestVerifyCleanPrint(t *testing.T) {
	g := grid()
	targets := []geom.Polygon{
		geom.Rect{Min: geom.P(60, 60), Max: geom.P(180, 180)}.Poly(),
		geom.Rect{Min: geom.P(300, 300), Max: geom.P(420, 420)}.Poly(),
	}
	// Print exactly the targets.
	aerial := aerialFromBlobs(g, targets)
	ds := VerifyAerial("nominal", aerial, 0.225, targets, DefaultConfig())
	if len(ds) != 0 {
		t.Errorf("clean print reported %d defects: %v", len(ds), ds)
	}
}

func TestVerifyMissing(t *testing.T) {
	g := grid()
	targets := []geom.Polygon{
		geom.Rect{Min: geom.P(60, 60), Max: geom.P(180, 180)}.Poly(),
		geom.Rect{Min: geom.P(300, 300), Max: geom.P(420, 420)}.Poly(),
	}
	// Only the first target prints.
	aerial := aerialFromBlobs(g, targets[:1])
	ds := VerifyAerial("nominal", aerial, 0.225, targets, DefaultConfig())
	counts := Count(ds)
	if counts[Missing] != 1 {
		t.Errorf("missing = %d, want 1 (%v)", counts[Missing], ds)
	}
	for _, d := range ds {
		if d.Kind == Missing && d.Target != 1 {
			t.Errorf("missing defect on target %d, want 1", d.Target)
		}
	}
}

func TestVerifyBridge(t *testing.T) {
	g := grid()
	targets := []geom.Polygon{
		geom.Rect{Min: geom.P(60, 200), Max: geom.P(200, 280)}.Poly(),
		geom.Rect{Min: geom.P(280, 200), Max: geom.P(420, 280)}.Poly(),
	}
	// One printed blob spanning both targets.
	blob := geom.Rect{Min: geom.P(60, 200), Max: geom.P(420, 280)}.Poly()
	aerial := aerialFromBlobs(g, []geom.Polygon{blob})
	ds := VerifyAerial("nominal", aerial, 0.225, targets, DefaultConfig())
	if Count(ds)[Bridge] == 0 {
		t.Errorf("bridge not detected: %v", ds)
	}
}

func TestVerifyNeck(t *testing.T) {
	g := grid()
	// Target: 300x80 wire. Print: same wire but pinched to 24 nm in the
	// middle third.
	target := geom.Rect{Min: geom.P(100, 220), Max: geom.P(400, 300)}.Poly()
	printShape := geom.Polygon{
		geom.P(100, 220), geom.P(200, 220), geom.P(200, 248), geom.P(300, 248),
		geom.P(300, 220), geom.P(400, 220), geom.P(400, 300), geom.P(300, 300),
		geom.P(300, 272), geom.P(200, 272), geom.P(200, 300), geom.P(100, 300),
	}
	aerial := aerialFromBlobs(g, []geom.Polygon{printShape})
	ds := VerifyAerial("nominal", aerial, 0.225, []geom.Polygon{target}, DefaultConfig())
	counts := Count(ds)
	if counts[Neck] == 0 {
		t.Errorf("neck not detected: %v", ds)
	}
	// The neck CD is ~24 nm.
	for _, d := range ds {
		if d.Kind == Neck && (d.Value < 10 || d.Value > 40) {
			t.Errorf("neck CD = %v, want ~24", d.Value)
		}
	}
}

func TestVerifyExtraPrint(t *testing.T) {
	g := grid()
	target := geom.Rect{Min: geom.P(60, 60), Max: geom.P(180, 180)}.Poly()
	stray := geom.Rect{Min: geom.P(340, 340), Max: geom.P(400, 400)}.Poly()
	aerial := aerialFromBlobs(g, []geom.Polygon{target, stray})
	ds := VerifyAerial("nominal", aerial, 0.225, []geom.Polygon{target}, DefaultConfig())
	counts := Count(ds)
	if counts[Extra] != 1 {
		t.Fatalf("extra = %d, want 1 (%v)", counts[Extra], ds)
	}
	for _, d := range ds {
		if d.Kind == Extra {
			if d.Target != -1 {
				t.Errorf("extra defect target = %d", d.Target)
			}
			want := stray.Area()
			if math.Abs(d.Value-want)/want > 0.2 {
				t.Errorf("extra area = %v, want ~%v", d.Value, want)
			}
		}
	}
}

func TestVerifyIgnoresSpecks(t *testing.T) {
	g := grid()
	target := geom.Rect{Min: geom.P(60, 60), Max: geom.P(180, 180)}.Poly()
	speck := geom.Rect{Min: geom.P(400, 400), Max: geom.P(412, 412)}.Poly() // 144 nm² < 400
	aerial := aerialFromBlobs(g, []geom.Polygon{target, speck})
	ds := VerifyAerial("nominal", aerial, 0.225, []geom.Polygon{target}, DefaultConfig())
	if Count(ds)[Extra] != 0 {
		t.Errorf("speck flagged: %v", ds)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Bridge: "bridge", Neck: "neck", Missing: "missing", Extra: "extra", Kind(9): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestLabelComponents(t *testing.T) {
	g := raster.Grid{Size: 16, Pitch: 1}
	b := raster.NewBinary(g)
	// Two separate blobs and one diagonal-only neighbour (4-connectivity
	// keeps it separate).
	b.Set(2, 2, 1)
	b.Set(2, 3, 1)
	b.Set(3, 3, 1) // diagonal from (2,2), connected via (2,3)
	b.Set(10, 10, 1)
	b.Set(12, 12, 1) // isolated
	labels, count := b.Label()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[3*16+3] != labels[2*16+2] {
		t.Error("4-connected pixels got different labels")
	}
	if labels[10*16+10] == labels[12*12+12] && labels[10*16+10] != 0 {
		t.Error("separate blobs share a label")
	}
}
