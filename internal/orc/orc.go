// Package orc implements optical (lithography) rule checking — the
// verification step that follows OPC in production flows. It images the
// final mask across the process-window corners and reports printability
// defects the EPE/PVB summary numbers can hide:
//
//   - Bridge: one printed blob spans two or more distinct target shapes.
//   - Neck:   the printed CD across a target drops below spec.
//   - Missing: a target fails to print at all.
//   - Extra:  a printed blob touches no target (an assist feature printing).
package orc

import (
	"fmt"
	"sort"

	"cardopc/internal/fft"
	"cardopc/internal/geom"
	"cardopc/internal/litho"
	"cardopc/internal/metrics"
	"cardopc/internal/obs"
	"cardopc/internal/pw"
	"cardopc/internal/raster"
)

// Kind enumerates defect classes.
type Kind int

const (
	// Bridge marks two targets shorted by one printed blob.
	Bridge Kind = iota
	// Neck marks a printed CD below spec inside a target.
	Neck
	// Missing marks a target that does not print.
	Missing
	// Extra marks printing with no corresponding target.
	Extra
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Bridge:
		return "bridge"
	case Neck:
		return "neck"
	case Missing:
		return "missing"
	case Extra:
		return "extra"
	default:
		return "unknown"
	}
}

// Defect is one printability violation.
type Defect struct {
	Kind Kind
	// Corner names the process condition ("nominal", "inner", "outer").
	Corner string
	// Target indexes the affected target (-1 for Extra defects).
	Target int
	// Pos locates the defect.
	Pos geom.Pt
	// Value carries the measured quantity (CD for necks, blob area in nm²
	// for extras, 0 otherwise).
	Value float64
}

// String implements fmt.Stringer.
func (d Defect) String() string {
	return fmt.Sprintf("%s@%s target %d %v", d.Kind, d.Corner, d.Target, d.Pos)
}

// Config tunes the checks.
type Config struct {
	// NeckFrac is the minimum acceptable printed CD as a fraction of the
	// target's drawn width.
	NeckFrac float64
	// ExtraMinAreaNM2 ignores printed specks smaller than this.
	ExtraMinAreaNM2 float64
	// CDSpacing is the spacing of neck-check cuts along each target.
	CDSpacing float64
}

// DefaultConfig returns production-like settings: necks below 70 % of drawn
// CD, extra prints above 400 nm².
func DefaultConfig() Config {
	return Config{NeckFrac: 0.7, ExtraMinAreaNM2: 400, CDSpacing: 60}
}

// Verify images the mask at all three process corners and runs every check.
func Verify(proc *litho.Process, maskPolys, targets []geom.Polygon, cfg Config) []Defect {
	span := obs.Start("orc.verify")
	g := proc.Nominal.Grid()
	mask := raster.Rasterize(g, maskPolys, 4)
	mf := fft.GetGrid(mask.Size, mask.Size)
	litho.MaskFreqInto(mf, mask)
	nomA, innerA, outerA := proc.AerialAllFromFreq(mf)
	fft.PutGrid(mf)

	var out []Defect
	out = append(out, verifyCorner("nominal", nomA, proc.Nominal.Config().Threshold, targets, cfg)...)
	out = append(out, verifyCorner("inner", innerA, proc.Inner.Config().Threshold, targets, cfg)...)
	out = append(out, verifyCorner("outer", outerA, proc.Outer.Config().Threshold, targets, cfg)...)
	for _, d := range out {
		obs.C("orc.defects." + d.Kind.String()).Inc()
	}
	span.End(obs.A("defects", len(out)))
	return out
}

// VerifyAerial runs the checks against one pre-computed aerial image.
func VerifyAerial(corner string, aerial *raster.Field, th float64, targets []geom.Polygon, cfg Config) []Defect {
	return verifyCorner(corner, aerial, th, targets, cfg)
}

func verifyCorner(corner string, aerial *raster.Field, th float64, targets []geom.Polygon, cfg Config) []Defect {
	var out []Defect
	printed := aerial.Threshold(th)
	labels, _ := printed.Label()
	g := printed.Grid

	// Map each target to the set of print labels under it, probing the
	// measure points (interior side) and the centroid.
	targetLabels := make([]map[int32]bool, len(targets))
	for ti, t := range targets {
		targetLabels[ti] = map[int32]bool{}
		for _, p := range interiorSamples(t, cfg.CDSpacing) {
			px, py := g.ToPixel(p)
			x, y := int(px+0.5), int(py+0.5)
			if x < 0 || y < 0 || x >= g.Size || y >= g.Size {
				continue
			}
			if l := labels[y*g.Size+x]; l != 0 {
				targetLabels[ti][l] = true
			}
		}
		if len(targetLabels[ti]) == 0 {
			out = append(out, Defect{Kind: Missing, Corner: corner, Target: ti, Pos: t.Centroid()})
		}
	}

	// Bridges: one label claimed by 2+ targets. Walk each target's label
	// set in sorted order so defect order (and bridge ownership ties) do
	// not depend on map iteration.
	owner := map[int32]int{}
	for ti, set := range targetLabels {
		labs := make([]int32, 0, len(set))
		for l := range set {
			labs = append(labs, l)
		}
		sort.Slice(labs, func(i, j int) bool { return labs[i] < labs[j] })
		for _, l := range labs {
			if prev, ok := owner[l]; ok && prev != ti {
				out = append(out, Defect{Kind: Bridge, Corner: corner, Target: ti, Pos: targets[ti].Centroid()})
			} else {
				owner[l] = ti
			}
		}
	}

	// Necks: CD cuts along each target.
	for ti, t := range targets {
		if len(targetLabels[ti]) == 0 {
			continue // already Missing
		}
		for _, cutAt := range metrics.ProbesFromPolygon(t, cfg.CDSpacing) {
			// Cut inward from the edge probe: centre the cut a half-CD
			// inside along the inward normal.
			width := localWidth(t, cutAt)
			if width <= 0 {
				continue
			}
			centre := cutAt.Pos.Add(cutAt.Normal.Mul(-width / 2))
			cd := pw.MeasureCD(aerial, pw.Cut{Center: centre, Dir: cutAt.Normal}, th, width*2)
			if cd > 0 && cd < cfg.NeckFrac*width {
				out = append(out, Defect{Kind: Neck, Corner: corner, Target: ti, Pos: centre, Value: cd})
			}
		}
	}

	// Extras: printed labels owned by no target.
	areas := map[int32]int{}
	sumX := map[int32]float64{}
	sumY := map[int32]float64{}
	for y := 0; y < g.Size; y++ {
		for x := 0; x < g.Size; x++ {
			l := labels[y*g.Size+x]
			if l == 0 {
				continue
			}
			areas[l]++
			w := g.ToWorld(float64(x), float64(y))
			sumX[l] += w.X
			sumY[l] += w.Y
		}
	}
	// Report extras in ascending label order, not map order.
	extraLabs := make([]int32, 0, len(areas))
	for l := range areas {
		extraLabs = append(extraLabs, l)
	}
	sort.Slice(extraLabs, func(i, j int) bool { return extraLabs[i] < extraLabs[j] })
	for _, l := range extraLabs {
		n := areas[l]
		if _, owned := owner[l]; owned {
			continue
		}
		area := float64(n) * g.Pitch * g.Pitch
		if area < cfg.ExtraMinAreaNM2 {
			continue
		}
		c := geom.P(sumX[l]/float64(n), sumY[l]/float64(n))
		// An unowned label might still belong to a target whose sample
		// points just missed it; only flag blobs clearly outside all
		// targets.
		inside := false
		for _, t := range targets {
			if t.Contains(c) {
				inside = true
				break
			}
		}
		if !inside {
			out = append(out, Defect{Kind: Extra, Corner: corner, Target: -1, Pos: c, Value: area})
		}
	}
	return out
}

// interiorSamples returns points just inside the target boundary plus the
// centroid.
func interiorSamples(t geom.Polygon, spacing float64) []geom.Pt {
	probes := metrics.ProbesFromPolygon(t, spacing)
	out := make([]geom.Pt, 0, len(probes)+1)
	for _, p := range probes {
		out = append(out, p.Pos.Add(p.Normal.Mul(-6)))
	}
	out = append(out, t.Centroid())
	return out
}

// localWidth estimates the target's drawn width at a probe: the distance
// from the probe position to the boundary along the inward normal.
func localWidth(t geom.Polygon, probe metrics.Probe) float64 {
	inward := probe.Normal.Mul(-1)
	// March inward until leaving the polygon.
	step := 2.0
	last := 0.0
	for s := step; s <= 400; s += step {
		if !t.Contains(probe.Pos.Add(inward.Mul(s))) {
			return last + step
		}
		last = s
	}
	return last
}

// Count summarises defects per kind.
func Count(ds []Defect) map[Kind]int {
	out := map[Kind]int{}
	for _, d := range ds {
		out[d.Kind]++
	}
	return out
}
