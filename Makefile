# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

.PHONY: all build test vet race bench

all: build vet test

build:
	$(GO) build ./...

# Unit + integration tests; includes the analysis self-check gate
# (internal/analysis/selfcheck_test.go), which fails the build on any
# new cardopc-vet diagnostic.
test:
	$(GO) test ./...

# go vet plus the repo's own analyzer suite over every package.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/cardopc-vet ./...

# Race-detector pass over the whole module. Slow (the parallel
# aerial/gradient reductions dominate); run before merging anything that
# touches goroutine fan-out in internal/litho, internal/fft or
# internal/bigopc.
race:
	$(GO) test -race ./...

# Paper-artefact benches at reduced settings; CARDOPC_FULL=1 for
# paper-fidelity runs.
bench:
	$(GO) test -bench . -benchtime 1x .
