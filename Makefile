# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

# Every bench target pins GOMAXPROCS via -cpu so numbers stay comparable
# across laptops and CI runners; the value is recorded in the baseline's
# environment fingerprint.
BENCH_CPU ?= 4
# Samples per benchmark for the tracked-set targets; medians over
# BENCH_COUNT runs are what benchdiff compares (>= 3 for a useful median).
BENCH_COUNT ?= 5

.PHONY: all build test test-pooldebug vet vet-fast vet-repro race bench bench-record bench-check bench-trend serve loadtest soak

all: build vet test

build:
	$(GO) build ./...

# Unit + integration tests; includes the analysis self-check gate
# (internal/analysis/selfcheck_test.go), which fails the build on any
# new cardopc-vet diagnostic.
test:
	$(GO) test ./...

# Pool-debug build: compiles the fft pool with the cardopc_pooldebug
# runtime guard, turning any double PutGrid / double Workspace.Release
# into a panic, and tracking outstanding checkouts so the server's
# cancellation tests can assert nothing leaked. The runtime complement
# of the static poolcheck analyzer.
test-pooldebug:
	$(GO) test -tags cardopc_pooldebug ./internal/fft/ ./internal/server/

# go vet plus the repo's own analyzer suite over every package —
# including the dataflow passes (poolcheck, noalloc, obsguard) and the
# interprocedural passes (ctxflow, lockcheck, nonblock, and
# summary-powered poolcheck). Cold: the whole module is re-type-checked
# every run.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/cardopc-vet ./...

# Incremental analyzer run for the edit loop: the same full suite as
# `make vet` (every analyzer registered in All(), dataflow and
# interprocedural passes included), but unchanged packages are served
# from .cardopc-vet-cache, so only edited packages (and their
# dependents) pay for type-checking.
vet-fast:
	$(GO) run ./cmd/cardopc-vet -incremental -timings ./...

# Cold/warm reproducibility check, same as CI's "cold vs incremental
# diagnostics diff" step: an incremental run (whatever hit/miss mix the
# local cache produces) must emit byte-identical JSON diagnostics to a
# from-scratch run against an empty cache. Catches interprocedural
# summary cache-key bugs.
vet-repro:
	$(GO) run ./cmd/cardopc-vet -incremental -json ./... > .vet-incr.json
	$(GO) run ./cmd/cardopc-vet -incremental -cache-dir "$$(mktemp -d)" -json ./... > .vet-cold.json
	cmp .vet-incr.json .vet-cold.json && echo "ok: cold and incremental diagnostics are byte-identical"
	rm -f .vet-incr.json .vet-cold.json

# Race-detector pass over the whole module. Slow (the parallel
# aerial/gradient reductions dominate); run before merging anything that
# touches goroutine fan-out in internal/litho, internal/fft or
# internal/bigopc.
race:
	$(GO) test -race ./...

# Every benchmark in the module at reduced settings: the paper-artefact
# harness at the root plus the per-package micro-benches (fft, litho,
# raster, rtree, spline, mrc). CARDOPC_FULL=1 for paper-fidelity runs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -cpu $(BENCH_CPU) ./...

# Re-record BENCH_BASELINE.json from the tracked hot-path set and append
# a per-commit snapshot to bench_history/. Run this deliberately — on
# the reference machine, after an intentional perf change — and commit
# both the baseline and the new BENCH_<sha>.json.
bench-record:
	$(GO) run ./cmd/benchdiff record -count $(BENCH_COUNT) -cpu $(BENCH_CPU) -history-dir bench_history

# Render the recorded per-commit benchmark history as a markdown table.
bench-trend:
	$(GO) run ./cmd/benchdiff trend

# Compare a fresh tracked-set run against BENCH_BASELINE.json; non-zero
# exit on a regression beyond tolerance. Same gate CI's bench job runs.
bench-check:
	$(GO) run ./cmd/benchdiff check -count $(BENCH_COUNT) -cpu $(BENCH_CPU)

# --- cardopcd service targets ---

# Daemon address for serve/loadtest/soak; override per invocation, e.g.
# `make serve SERVE_ADDR=127.0.0.1:0` for an ephemeral port.
SERVE_ADDR ?= 127.0.0.1:8347
LOADTEST_DURATION ?= 10s
LOADTEST_CONCURRENCY ?= 2

# Run the OPC daemon in the foreground with warm default kernels.
# Ctrl-C (or SIGTERM) drains: in-flight jobs finish, then it exits.
serve:
	$(GO) run ./cmd/cardopcd -addr $(SERVE_ADDR)

# Drive a running daemon closed-loop and print req/s + p50/p99 latency.
loadtest:
	$(GO) run ./cmd/cardopcd loadtest -addr http://$(SERVE_ADDR) \
		-d $(LOADTEST_DURATION) -c $(LOADTEST_CONCURRENCY)

# The CI soak, runnable locally: boot a daemon on an ephemeral port,
# load it for LOADTEST_DURATION while sampling a CPU profile, then
# SIGTERM and check the drain. Artifacts land in soak-out/.
soak:
	./scripts/soak.sh $(LOADTEST_DURATION) $(LOADTEST_CONCURRENCY)
