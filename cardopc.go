// Package cardopc is the public API of the CardOPC reproduction: a
// curvilinear optical proximity correction (OPC) framework that represents
// mask patterns as control points connected by cardinal splines, optimises
// them under lithography-simulation feedback, checks and resolves
// curvilinear mask-rule (MRC) violations, and fits pixel-ILT results with
// splines to form an ILT–OPC hybrid flow.
//
// The package re-exports the stable surface of the internal packages:
//
//	geometry    — Pt, Polygon, Rect (nm coordinates)
//	imaging     — LithoConfig/Simulator/Process (Hopkins SOCS model)
//	OPC         — Config, Optimize, Mask (the paper's contribution)
//	baselines   — SegmentOPC (Manhattan), DiffOPC, CircleOPC proxies
//	ILT + fit   — pixel ILT and Algorithm 1 spline fitting
//	MRC         — Rules, Check, Resolve
//	layouts     — the Table I–III testcase generators
//	metrics     — EPE, PVB, L2
//
// A minimal flow:
//
//	sim := cardopc.NewSimulator(cardopc.DefaultLithoConfig())
//	clip := cardopc.ViaClip(1)
//	res := cardopc.Optimize(sim, clip.Targets, cardopc.ViaConfig())
//	polys := res.Mask.Polygons(8)  // final curvilinear mask outlines
package cardopc

import (
	"context"
	"io"

	"cardopc/internal/baseline"
	"cardopc/internal/bigopc"
	"cardopc/internal/core"
	"cardopc/internal/exp"
	"cardopc/internal/fit"
	"cardopc/internal/fracture"
	"cardopc/internal/gds"
	"cardopc/internal/geom"
	"cardopc/internal/ilt"
	"cardopc/internal/layout"
	"cardopc/internal/litho"
	"cardopc/internal/meef"
	"cardopc/internal/metrics"
	"cardopc/internal/mrc"
	"cardopc/internal/orc"
	"cardopc/internal/pw"
	"cardopc/internal/raster"
	"cardopc/internal/spline"
)

// ---- Geometry ----

// Pt is a point/vector in nanometres.
type Pt = geom.Pt

// Polygon is a simple closed polygon (implicit closing edge).
type Polygon = geom.Polygon

// Rect is an axis-aligned box.
type Rect = geom.Rect

// P constructs a point.
func P(x, y float64) Pt { return geom.P(x, y) }

// ---- Splines ----

// SplineKind selects cardinal or Bézier loops.
type SplineKind = spline.Kind

// Spline kinds.
const (
	Cardinal = spline.Cardinal
	Bezier   = spline.Bezier
)

// CardinalCurve is a closed cardinal-spline loop (paper Eq. 2).
type CardinalCurve = spline.Curve

// NewCardinalCurve builds a closed loop with the given tension.
func NewCardinalCurve(ctrl []Pt, tension float64) *CardinalCurve {
	return spline.NewCurve(ctrl, tension)
}

// DefaultTension is the tension s = 0.6 used throughout the paper.
const DefaultTension = spline.DefaultTension

// ---- Imaging ----

// LithoConfig describes the imaging system and raster.
type LithoConfig = litho.Config

// Simulator is the Hopkins-model lithography simulator (Eq. 1).
type Simulator = litho.Simulator

// Process bundles nominal + inner/outer process corners for PVB.
type Process = litho.Process

// Grid describes the pixel raster.
type Grid = raster.Grid

// Field is a scalar image (mask transmission or aerial intensity).
type Field = raster.Field

// DefaultLithoConfig returns the 193 nm / NA 1.35 annular imager on a
// 512×512 @ 4 nm raster used by the experiments.
func DefaultLithoConfig() LithoConfig { return litho.DefaultConfig() }

// NewSimulator builds the SOCS kernel stack for cfg.
func NewSimulator(cfg LithoConfig) *Simulator { return litho.NewSimulator(cfg) }

// NewProcess builds the nominal simulator plus process-window corners.
func NewProcess(cfg LithoConfig) *Process {
	return litho.NewProcess(cfg, litho.DefaultCorners())
}

// Rasterize renders polygons onto a grid with supersampled coverage.
func Rasterize(g Grid, polys []Polygon, ss int) *Field {
	return raster.Rasterize(g, polys, ss)
}

// ---- CardOPC (the paper's contribution) ----

// Config holds every CardOPC knob.
type Config = core.Config

// Mask is the curvilinear mask (control-point loops).
type Mask = core.Mask

// Shape is one mask shape.
type Shape = core.Shape

// Result reports one CardOPC run.
type Result = core.Result

// Optimizer drives the correction loop step by step.
type Optimizer = core.Optimizer

// ViaConfig returns the paper's via-layer settings (§IV-A).
func ViaConfig() Config { return core.ViaConfig() }

// MetalConfig returns the paper's metal-layer settings (§IV-A).
func MetalConfig() Config { return core.MetalConfig() }

// LargeScaleConfig returns the paper's large-scale settings (§IV-B).
func LargeScaleConfig() Config { return core.LargeScaleConfig() }

// Optimize runs the full CardOPC flow on the target polygons.
func Optimize(sim *Simulator, targets []Polygon, cfg Config) *Result {
	return core.Optimize(sim, targets, cfg)
}

// NewOptimizer initialises a flow for stepwise control.
func NewOptimizer(sim *Simulator, targets []Polygon, cfg Config) *Optimizer {
	return core.NewOptimizer(sim, targets, cfg)
}

// ---- Metrics ----

// Probe is one EPE measurement site.
type Probe = metrics.Probe

// EPEResult aggregates edge placement errors.
type EPEResult = metrics.EPEResult

// EPEConfig controls EPE measurement.
type EPEConfig = metrics.EPEConfig

// DefaultEPEConfig returns the experiment thresholds for a given resist
// threshold.
func DefaultEPEConfig(ith float64) EPEConfig { return metrics.DefaultEPEConfig(ith) }

// MeasureEPE probes the aerial image along target-edge normals.
func MeasureEPE(aerial *Field, probes []Probe, cfg EPEConfig) EPEResult {
	return metrics.MeasureEPE(aerial, probes, cfg)
}

// Probes places conventional EPE measure points on every target polygon.
func Probes(targets []Polygon, spacingNM float64) []Probe {
	return metrics.ProbesForLayout(targets, spacingNM)
}

// ---- MRC ----

// MRCRules holds the curvilinear mask-rule constraints.
type MRCRules = mrc.Rules

// MRCChecker runs mask rule checks over a Mask.
type MRCChecker = mrc.Checker

// MRCViolation is one rule violation.
type MRCViolation = mrc.Violation

// MRCResolveOptions tunes the violation resolver.
type MRCResolveOptions = mrc.ResolveOptions

// MRCResolveResult summarises one resolving run.
type MRCResolveResult = mrc.ResolveResult

// DefaultMRCRules returns the experiment rule set for OPC masks.
func DefaultMRCRules() MRCRules { return mrc.DefaultRules() }

// HybridMRCRules returns the near-writer-limit rule set used for ILT-fitted
// masks, whose assist decorations are legitimately thin.
func HybridMRCRules() MRCRules { return mrc.HybridRules() }

// DefaultMRCResolveOptions returns the resolver settings used by the
// experiments.
func DefaultMRCResolveOptions() MRCResolveOptions { return mrc.DefaultResolveOptions() }

// NewMRCChecker indexes the mask for rule checking.
func NewMRCChecker(m *Mask, rules MRCRules) *MRCChecker {
	return mrc.NewChecker(m, rules)
}

// ---- ILT + fitting ----

// ILTConfig tunes the pixel-ILT solver.
type ILTConfig = ilt.Config

// ILTResult is one ILT run.
type ILTResult = ilt.Result

// DefaultILTConfig returns OpenILT-style solver settings.
func DefaultILTConfig() ILTConfig { return ilt.DefaultConfig() }

// RunILT optimises a pixel mask for the 0/1 target image.
func RunILT(sim *Simulator, target *Field, cfg ILTConfig) *ILTResult {
	return ilt.Run(sim, target, cfg)
}

// RunILTContext is RunILT with cooperative cancellation: the context is
// checked between descent iterations; on cancellation the partial
// result is returned alongside ctx.Err().
func RunILTContext(ctx context.Context, sim *Simulator, target *Field, cfg ILTConfig) (*ILTResult, error) {
	return ilt.RunContext(ctx, sim, target, cfg)
}

// FitConfig tunes Algorithm 1 (spline fitting of ILT masks).
type FitConfig = fit.Config

// DefaultFitConfig returns the hybrid-flow fitting settings.
func DefaultFitConfig() FitConfig { return fit.DefaultConfig() }

// HybridResult is one ILT–OPC hybrid run (§III-G).
type HybridResult = exp.HybridResult

// Hybrid runs pixel ILT, fits the result with cardinal splines
// (Algorithm 1) and resolves MRC violations.
func Hybrid(sim *Simulator, targets []Polygon, iltCfg ILTConfig, fitCfg FitConfig, rules MRCRules) *HybridResult {
	return exp.Hybrid(sim, targets, iltCfg, fitCfg, rules)
}

// RefineResult is one run of the ILT-initialised CardOPC flow.
type RefineResult = exp.RefineResult

// HybridRefine runs the paper's Fig. 2 step-① alternative end to end: ILT
// fitting provides SRAFs and initial main-shape geometry, the CardOPC loop
// refines the main shapes against the target measure points, and MRC
// resolving cleans the mask.
func HybridRefine(sim *Simulator, targets []Polygon, iltCfg ILTConfig, fitCfg FitConfig, opcCfg Config, rules MRCRules) *RefineResult {
	return exp.HybridRefine(sim, targets, iltCfg, fitCfg, opcCfg, rules)
}

// ---- Baselines ----

// SegConfig tunes the Manhattan segment-OPC baseline.
type SegConfig = baseline.SegConfig

// SegResult is one segment-OPC run.
type SegResult = baseline.SegResult

// SegmentOPC runs the conventional Manhattan OPC baseline.
func SegmentOPC(sim *Simulator, targets []Polygon, cfg SegConfig) *SegResult {
	return baseline.SegmentOPC(sim, targets, cfg)
}

// SegViaConfig / SegMetalConfig / SegLargeConfig return the baseline's
// per-experiment settings.
func SegViaConfig() SegConfig   { return baseline.SegViaConfig() }
func SegMetalConfig() SegConfig { return baseline.SegMetalConfig() }
func SegLargeConfig() SegConfig { return baseline.SegLargeConfig() }

// ---- Layouts ----

// Clip is one OPC testcase.
type Clip = layout.Clip

// Design is a large-scale layout (Table III).
type Design = layout.Design

// ViaClip returns via testcase i ∈ [1,13] (Table I structure).
func ViaClip(i int) Clip { return layout.ViaClip(i) }

// MetalClip returns metal testcase i ∈ [1,10] (Table II structure).
func MetalClip(i int) Clip { return layout.MetalClip(i) }

// LargeDesign returns "gcd", "aes" or "dynamicnode" (Table III structure).
func LargeDesign(name string) Design { return layout.LargeDesign(name) }

// ---- Mask data exchange & mask write cost ----

// GDSLibrary is a single-structure GDSII library.
type GDSLibrary = gds.Library

// NewGDSLibrary wraps mask polygons for GDSII export (1 nm database unit).
func NewGDSLibrary(name string, polys []Polygon) *GDSLibrary {
	return gds.NewLibrary(name, polys)
}

// ReadGDS parses a GDSII stream into a library.
func ReadGDS(r io.Reader) (*GDSLibrary, error) { return gds.Read(r) }

// Trapezoid is one VSB mask-writer shot.
type Trapezoid = fracture.Trapezoid

// FractureOptions tunes VSB fracturing.
type FractureOptions = fracture.Options

// FractureStats summarises a fractured layout (shot count, rect fraction,
// area, sliver height).
type FractureStats = fracture.Stats

// DefaultFractureOptions returns mask-writer-like fracturing settings.
func DefaultFractureOptions() FractureOptions { return fracture.DefaultOptions() }

// FractureMask decomposes mask polygons into VSB shots and aggregates the
// write-cost statistics.
func FractureMask(polys []Polygon, opt FractureOptions) ([]Trapezoid, FractureStats) {
	return fracture.FractureAll(polys, opt)
}

// ---- Process window ----

// PWCut is a CD measurement site for process-window analysis.
type PWCut = pw.Cut

// PWConfig tunes the exposure-defocus sweep.
type PWConfig = pw.Config

// PWindow is a full exposure-defocus analysis.
type PWindow = pw.Window

// DefaultPWConfig returns a 5x5 dose-defocus sweep with a ±10 % CD spec.
func DefaultPWConfig() PWConfig { return pw.DefaultConfig() }

// AnalyzeProcessWindow sweeps dose and defocus for one mask, measuring CD
// at the cut against targetCD.
func AnalyzeProcessWindow(base LithoConfig, mask *Field, cut PWCut, targetCD float64, cfg PWConfig) *PWindow {
	return pw.Analyze(base, mask, cut, targetCD, cfg)
}

// ---- Post-OPC verification (ORC) ----

// ORCDefect is one printability defect found by lithography rule checking.
type ORCDefect = orc.Defect

// ORCConfig tunes the ORC checks.
type ORCConfig = orc.Config

// DefaultORCConfig returns production-like ORC settings.
func DefaultORCConfig() ORCConfig { return orc.DefaultConfig() }

// VerifyORC images the mask across the process corners and reports bridges,
// necks, missing features and extra printing.
func VerifyORC(proc *Process, maskPolys, targets []Polygon, cfg ORCConfig) []ORCDefect {
	return orc.Verify(proc, maskPolys, targets, cfg)
}

// ---- Tiled large-layout OPC ----

// TiledConfig tunes the halo-stitched large-layout driver.
type TiledConfig = bigopc.Config

// TiledResult is one tiled run.
type TiledResult = bigopc.Result

// TiledOptimize corrects a layout larger than one optical window: tiles
// with halo context, goroutine-parallel, one owner per polygon.
func TiledOptimize(targets []Polygon, cfg TiledConfig) (*TiledResult, error) {
	return bigopc.Run(targets, cfg)
}

// MeasureMEEF estimates the mask error enhancement factor of a mask's
// control points by perturbation through the simulator (refs [37], [38]).
func MeasureMEEF(sim *Simulator, mask *Mask, cfg MEEFConfig) *MEEFResult {
	return meef.Measure(sim, mask, cfg)
}

// MEEFConfig tunes the MEEF measurement.
type MEEFConfig = meef.Config

// MEEFResult is one MEEF measurement.
type MEEFResult = meef.Result

// DefaultMEEFConfig returns a 2 nm perturbation with stride-4 sampling.
func DefaultMEEFConfig() MEEFConfig { return meef.DefaultConfig() }
