#!/usr/bin/env bash
# Soak the cardopcd daemon: boot it on an ephemeral port, drive it with
# the closed-loop load generator while sampling a CPU profile off
# /debug/pprof/profile, render the profile as a flame-style SVG call
# graph (needs graphviz), then SIGTERM the daemon and check the drain.
#
# Usage: scripts/soak.sh [duration] [concurrency] [outdir]
#   duration     load duration, plain seconds or Go duration (default 60s)
#   concurrency  closed-loop workers (default 4)
#   outdir       artifact directory (default soak-out)
#
# Artifacts: cardopcd.log, loadtest.json, profile.pb.gz, flame.svg,
# metrics.json (JSON snapshot from /metrics.json), metrics.prom
# (Prometheus exposition from /metrics, validated with cmd/promcheck),
# summary.md. Exit non-zero when the load test saw errors/failures, the
# profile could not be captured, the exposition failed validation, or
# the daemon did not drain cleanly.
set -euo pipefail

DURATION="${1:-60s}"
CONCURRENCY="${2:-4}"
OUT="${3:-soak-out}"

# Normalise the duration to whole seconds for pprof's ?seconds= query.
secs="${DURATION%s}"
case "$DURATION" in
  *m) secs=$(( ${DURATION%m} * 60 )) ;;
esac
if ! [[ "$secs" =~ ^[0-9]+$ ]]; then
  echo "soak: cannot parse duration '$DURATION' (use 60, 60s or 2m)" >&2
  exit 2
fi
# Profile for most of the load window, leaving margin so the profile
# request finishes while load is still running.
profile_secs=$(( secs > 10 ? secs - 5 : secs / 2 ))
[ "$profile_secs" -lt 1 ] && profile_secs=1

mkdir -p "$OUT"
rm -f "$OUT"/cardopcd.log "$OUT"/loadtest.json "$OUT"/profile.pb.gz \
      "$OUT"/flame.svg "$OUT"/metrics.json "$OUT"/metrics.prom \
      "$OUT"/summary.md

echo "soak: building cardopcd"
go build -o "$OUT/cardopcd" ./cmd/cardopcd

echo "soak: booting daemon"
"$OUT/cardopcd" -addr 127.0.0.1:0 >"$OUT/cardopcd.log" 2>&1 &
DPID=$!
trap 'kill -9 "$DPID" 2>/dev/null || true' EXIT

URL=""
for _ in $(seq 1 50); do
  URL=$(sed -n 's/^cardopcd listening on //p' "$OUT/cardopcd.log" | head -1)
  [ -n "$URL" ] && break
  sleep 0.2
done
if [ -z "$URL" ]; then
  echo "soak: daemon never came up:" >&2
  cat "$OUT/cardopcd.log" >&2
  exit 1
fi
echo "soak: daemon at $URL (pid $DPID)"
curl -fsS "$URL/healthz" >/dev/null

echo "soak: sampling ${profile_secs}s CPU profile under ${DURATION} of load (${CONCURRENCY} workers)"
curl -fsS -o "$OUT/profile.pb.gz" "$URL/debug/pprof/profile?seconds=$profile_secs" &
PROF=$!

"$OUT/cardopcd" loadtest -addr "$URL" -d "$DURATION" -c "$CONCURRENCY" -json \
  | tee "$OUT/loadtest.json"
LOAD_RC=${PIPESTATUS[0]}

if ! wait "$PROF"; then
  echo "soak: profile capture failed" >&2
  exit 1
fi
gunzip -t "$OUT/profile.pb.gz" 2>/dev/null || true
test -s "$OUT/profile.pb.gz"

curl -fsS "$URL/metrics.json" >"$OUT/metrics.json"
curl -fsS "$URL/metrics" >"$OUT/metrics.prom"
go run ./cmd/promcheck "$OUT/metrics.prom"

echo "soak: rendering flame graph"
if command -v dot >/dev/null 2>&1; then
  go tool pprof -svg -output "$OUT/flame.svg" "$OUT/cardopcd" "$OUT/profile.pb.gz"
  echo "soak: flame graph at $OUT/flame.svg"
else
  echo "soak: graphviz (dot) not installed; skipping SVG render" >&2
  echo "      inspect with: go tool pprof $OUT/cardopcd $OUT/profile.pb.gz" >&2
fi

echo "soak: draining daemon (SIGTERM)"
kill -TERM "$DPID"
DRAINED=0
for _ in $(seq 1 120); do
  if ! kill -0 "$DPID" 2>/dev/null; then DRAINED=1; break; fi
  sleep 1
done
trap - EXIT
if [ "$DRAINED" != 1 ]; then
  echo "soak: daemon did not exit after SIGTERM" >&2
  kill -9 "$DPID" 2>/dev/null || true
  exit 1
fi
grep -q "drained, bye" "$OUT/cardopcd.log" || {
  echo "soak: drain did not complete cleanly:" >&2
  tail -5 "$OUT/cardopcd.log" >&2
  exit 1
}

{
  echo "## cardopcd soak"
  echo
  echo "- duration: ${DURATION}, concurrency: ${CONCURRENCY}"
  echo "- load: \`$(python3 - "$OUT/loadtest.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
print(f"{r['req_per_s']:.2f} req/s, p50 {r['p50_ms']:.1f} ms, p90 {r['p90_ms']:.1f} ms, p99 {r['p99_ms']:.1f} ms "
      f"({r['requests']} ok, {r['failed']} failed, {r['errors']} errors, {r['throttled']} throttled)")
EOF
)\`"
  echo "- kernel builds over the whole soak: \`$(python3 - "$OUT/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
print(m["metrics"]["counters"].get("litho.build_kernels", "absent"))
EOF
)\` (warm cache ⇒ flat at the distinct-config count)"
  echo "- profile: profile.pb.gz ($(wc -c <"$OUT/profile.pb.gz") bytes), flame graph: $( [ -f "$OUT/flame.svg" ] && echo flame.svg || echo "not rendered" )"
  echo "- metrics: metrics.prom ($(grep -c '^cardopc_' "$OUT/metrics.prom") samples, promcheck clean) + metrics.json snapshot"
  echo "- drain: clean"
} >"$OUT/summary.md"
cat "$OUT/summary.md"

exit "$LOAD_RC"
