package cardopc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cardopc/internal/bigopc"
	"cardopc/internal/cli"
	"cardopc/internal/core"
	"cardopc/internal/geom"
	"cardopc/internal/layout"
	"cardopc/internal/litho"
	"cardopc/internal/obs"
)

// TestObservabilitySmoke is the end-to-end check of the observability
// pipeline: it runs a small via clip plus a two-tile bigopc run with
// tracing, telemetry and report enabled through the same cli.StartObs
// helper the CLIs use, then validates every emitted artifact.
func TestObservabilitySmoke(t *testing.T) {
	dir := t.TempDir()
	opts := cli.ObsOptions{
		Trace:      filepath.Join(dir, "trace.json"),
		MetricsOut: filepath.Join(dir, "metrics.jsonl"),
		Report:     filepath.Join(dir, "report.json"),
		Cmd:        "smoke",
		Clip:       "V1",
	}
	run, err := cli.StartObs(opts)
	if err != nil {
		t.Fatalf("StartObs: %v", err)
	}

	// Small single-window OPC run: litho kernel + optimizer spans.
	lcfg := litho.DefaultConfig()
	lcfg.GridSize = 256
	lcfg.PitchNM = 8
	sim := litho.NewSimulator(lcfg)
	clip := layout.ViaClip(1)
	opc := core.ViaConfig()
	opc.Iterations = 3
	opc.DecayAt = nil
	res := core.Optimize(sim, clip.Targets, opc)
	if res.Iterations != 3 {
		t.Fatalf("OPC ran %d iterations, want 3", res.Iterations)
	}
	run.Report().Set("l2_px", 0)

	// Two-tile bigopc run: per-tile worker spans.
	bcfg := bigopc.Config{TileNM: 1024, HaloNM: 400, OPC: opc, Litho: lcfg, Workers: 2}
	targets := []geom.Polygon{
		geom.Polygon{geom.P(400, 400), geom.P(480, 400), geom.P(480, 480), geom.P(400, 480)},
		geom.Polygon{geom.P(1400, 400), geom.P(1480, 400), geom.P(1480, 480), geom.P(1400, 480)},
	}
	if _, err := bigopc.Run(targets, bcfg); err != nil {
		t.Fatalf("bigopc.Run: %v", err)
	}

	// While the obs state is still installed, the live registry must
	// render as a valid Prometheus exposition — the same surface
	// ServeDebug and cardopcd serve at /metrics.
	checkProm(t)

	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	checkTrace(t, opts.Trace)
	checkTelemetry(t, opts.MetricsOut)
	checkReport(t, opts.Report)
}

// checkProm validates the Prometheus exposition of the live run:
// parses clean under the repo's format checker and carries the
// counters the run just incremented.
func checkProm(t *testing.T) {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Metrics().WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	if err := obs.ValidateProm(strings.NewReader(out)); err != nil {
		t.Fatalf("/metrics exposition does not validate: %v\n%s", err, out)
	}
	for _, want := range []string{
		"cardopc_opc_iterations_total",
		"cardopc_bigopc_tiles_done_total",
		"cardopc_span_opc_step_ms_bucket",
		"cardopc_span_opc_step_ms_quantile",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// checkTrace validates the Chrome trace-event file: loadable JSON of the
// expected shape, containing spans from every instrumented layer.
func checkTrace(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	seen := map[string]int{}
	for _, e := range trace.TraceEvents {
		if e.Phase != "X" {
			t.Errorf("event %s has phase %q, want X", e.Name, e.Phase)
		}
		if e.Dur < 0 || e.TS < 0 {
			t.Errorf("event %s has negative time (ts %v dur %v)", e.Name, e.TS, e.Dur)
		}
		seen[e.Name]++
	}
	for _, want := range []string{"litho.kernel", "opc.step", "opc.run", "bigopc.tile", "bigopc.run"} {
		if seen[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, seen)
		}
	}
	if seen["opc.step"] < 3 {
		t.Errorf("trace has %d opc.step spans, want >= 3", seen["opc.step"])
	}
	if seen["bigopc.tile"] != 2 {
		t.Errorf("trace has %d bigopc.tile spans, want 2", seen["bigopc.tile"])
	}
}

// checkTelemetry validates the JSONL stream: every line parses, and the
// per-iteration OPC records carry a finite positive loss.
func checkTelemetry(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("reading telemetry: %v", err)
	}
	defer f.Close()
	iters := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			T    string  `json:"t"`
			Iter int     `json:"iter"`
			Loss float64 `json:"loss"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad telemetry line %q: %v", sc.Text(), err)
		}
		if rec.T == "" {
			t.Errorf("telemetry line missing kind tag: %q", sc.Text())
		}
		if rec.T == "opc.iter" {
			iters++
			if !(rec.Loss > 0) {
				t.Errorf("opc.iter %d has non-positive loss %v", rec.Iter, rec.Loss)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 3 single-window iterations plus 2 tiles × 3 iterations.
	if iters < 3 {
		t.Errorf("telemetry has %d opc.iter records, want >= 3", iters)
	}
}

// checkReport validates the end-of-run report: identity, the value set
// by the test, and a metrics snapshot with live counters.
func checkReport(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep struct {
		Cmd     string         `json:"cmd"`
		Clip    string         `json:"clip"`
		WallMS  float64        `json:"wall_ms"`
		Values  map[string]any `json:"values"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Cmd != "smoke" || rep.Clip != "V1" {
		t.Errorf("report identity = %s/%s, want smoke/V1", rep.Cmd, rep.Clip)
	}
	if !(rep.WallMS > 0) {
		t.Errorf("report wall_ms = %v, want > 0", rep.WallMS)
	}
	if _, ok := rep.Values["l2_px"]; !ok {
		t.Error("report values missing l2_px")
	}
	if got := rep.Metrics.Counters["opc.iterations"]; got < 9 {
		t.Errorf("opc.iterations counter = %d, want >= 9 (3 + 2 tiles x 3)", got)
	}
	if got := rep.Metrics.Counters["bigopc.tiles.done"]; got != 2 {
		t.Errorf("bigopc.tiles.done counter = %d, want 2", got)
	}
}
